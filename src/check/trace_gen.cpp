#include "check/trace_gen.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace albatross::check {

std::size_t FuzzTrace::packet_count() const {
  std::size_t n = 0;
  for (const auto& op : ops) {
    if (op.kind == TraceOpKind::kPacket) ++n;
  }
  return n;
}

FuzzTrace generate_trace(std::uint64_t seed, std::uint64_t ticks,
                         ChaosMode chaos, bool with_tier) {
  Rng rng(seed ^ 0xa1ba7055f022ull);
  FuzzTrace trace;
  TraceScenario& sc = trace.scenario;
  sc.seed = seed;
  sc.service = static_cast<ServiceKind>(rng.next_below(4));
  sc.mode = rng.next_bool(0.85) ? LbMode::kPlb : LbMode::kRss;
  sc.data_cores = static_cast<std::uint16_t>(2 + rng.next_below(3));
  sc.tenants = static_cast<std::uint32_t>(8 + rng.next_below(57));
  sc.flows = static_cast<std::uint32_t>(64 + rng.next_below(449));
  sc.packet_bytes = 128 + 64 * rng.next_below(8);
  sc.drop_flag = rng.next_bool(0.9);
  sc.horizon = static_cast<std::int64_t>(ticks) * kFuzzTick;

  // Offered rate 0.5-4 Mpps: enough to exercise the scaled-down meters
  // and fill reorder windows without making a 10k-tick run slow.
  const double rate_pps = 0.5e6 + rng.next_double() * 3.5e6;
  const double mean_gap_ns = 1e9 / rate_pps;

  ZipfSampler zipf(sc.flows, 0.9);
  NanoTime t = NanoTime{0};
  while (true) {
    t += nanos_from_double(std::max(1.0, rng.next_exponential(mean_gap_ns)));
    if (t >= sc.horizon) break;
    TraceOp op;
    op.kind = TraceOpKind::kPacket;
    op.at = t;
    op.flow = static_cast<std::uint32_t>(zipf.sample(rng));
    trace.ops.push_back(op);
  }

  if (chaos != ChaosMode::kNone) {
    // A handful of fault windows spread over the horizon.
    const std::uint64_t faults = 1 + rng.next_below(3);
    for (std::uint64_t i = 0; i < faults; ++i) {
      TraceOp op;
      op.at = Nanos{static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(
              std::max<std::int64_t>(1, (sc.horizon / 2).count()))))};
      const bool stall_allowed = chaos == ChaosMode::kReorderStall;
      const std::uint64_t pick = rng.next_below(stall_allowed ? 3 : 2);
      switch (pick) {
        case 0:
          op.kind = TraceOpKind::kDmaFault;
          op.duration = static_cast<NanoTime>(
              (50 + rng.next_below(200)) * kMicrosecond);
          op.magnitude = 2.0 + rng.next_double() * 8.0;
          break;
        case 1:
          op.kind = TraceOpKind::kCoreStall;
          op.core = static_cast<std::uint16_t>(
              rng.next_below(sc.data_cores));
          op.duration = static_cast<NanoTime>(
              (100 + rng.next_below(900)) * kMicrosecond);
          break;
        default:
          // Long enough past the 100us reorder timeout that head
          // resolutions provably exceed timeout + slack.
          op.kind = TraceOpKind::kReorderStall;
          op.duration = static_cast<NanoTime>(
              (300 + rng.next_below(700)) * kMicrosecond);
          break;
      }
      trace.ops.push_back(op);
    }
    std::stable_sort(trace.ops.begin(), trace.ops.end(),
                     [](const TraceOp& a, const TraceOp& b) {
                       return a.at < b.at;
                     });
  }

  if (with_tier) {
    // Separate Rng: enabling the tier must not perturb the packet/fault
    // stream the seed generated above (legacy seeds stay reproducible).
    Rng trng(seed ^ 0xd971e2ull);
    sc.dpu_tier = true;
    constexpr std::size_t kCaps[] = {512, 4'096, 65'536};
    sc.fpga_capacity = kCaps[trng.next_below(3)];
    const std::uint64_t tier_ops = 2 + trng.next_below(5);
    for (std::uint64_t i = 0; i < tier_ops; ++i) {
      TraceOp op;
      op.kind = trng.next_bool(0.5) ? TraceOpKind::kTierPromote
                                    : TraceOpKind::kTierDemote;
      op.at = Nanos{static_cast<std::int64_t>(trng.next_below(
          static_cast<std::uint64_t>(std::max<std::int64_t>(
              1, sc.horizon.count()))))};
      op.flow = static_cast<std::uint32_t>(trng.next_below(sc.flows));
      trace.ops.push_back(op);
    }
    std::stable_sort(trace.ops.begin(), trace.ops.end(),
                     [](const TraceOp& a, const TraceOp& b) {
                       return a.at < b.at;
                     });
  }
  return trace;
}

// ---------------------------------------------------------------------------
// TraceSource

TraceSource::TraceSource(const FuzzTrace& trace) : trace_(&trace) {
  const TraceScenario& sc = trace.scenario;
  const std::uint32_t tenants = sc.tenants == 0 ? 1 : sc.tenants;
  flows_.reserve(sc.flows);
  for (std::uint32_t i = 0; i < sc.flows; ++i) {
    const Vni vni = 1 + static_cast<Vni>(i % tenants);
    flows_.push_back(make_flow(i, vni, i / tenants));
  }
  skip_to_packet();
}

void TraceSource::skip_to_packet() {
  while (next_op_ < trace_->ops.size() &&
         trace_->ops[next_op_].kind != TraceOpKind::kPacket) {
    ++next_op_;
  }
}

std::optional<NanoTime> TraceSource::next_time() const {
  if (next_op_ >= trace_->ops.size()) return std::nullopt;
  return trace_->ops[next_op_].at;
}

PacketPtr TraceSource::emit() {
  const TraceOp& op = trace_->ops[next_op_++];
  skip_to_packet();
  FlowInfo& f = flows_[op.flow % flows_.size()];
  auto pkt =
      Packet::make_synthetic(f.tuple, f.vni, trace_->scenario.packet_bytes);
  pkt->rx_time = op.at;
  pkt->flow_id = f.flow_id;
  pkt->seq_in_flow = f.packets_emitted++;
  return pkt;
}

// ---------------------------------------------------------------------------
// JSON round-trip

namespace {

const char* op_kind_name(TraceOpKind k) {
  switch (k) {
    case TraceOpKind::kPacket: return "packet";
    case TraceOpKind::kReorderStall: return "reorder_stall";
    case TraceOpKind::kDmaFault: return "dma_fault";
    case TraceOpKind::kCoreStall: return "core_stall";
    case TraceOpKind::kTierPromote: return "tier_promote";
    case TraceOpKind::kTierDemote: return "tier_demote";
  }
  return "packet";
}

std::optional<TraceOpKind> op_kind_from(const std::string& name) {
  if (name == "packet") return TraceOpKind::kPacket;
  if (name == "reorder_stall") return TraceOpKind::kReorderStall;
  if (name == "dma_fault") return TraceOpKind::kDmaFault;
  if (name == "core_stall") return TraceOpKind::kCoreStall;
  if (name == "tier_promote") return TraceOpKind::kTierPromote;
  if (name == "tier_demote") return TraceOpKind::kTierDemote;
  return std::nullopt;
}

}  // namespace

std::string trace_to_json(const FuzzTrace& trace) {
  const TraceScenario& sc = trace.scenario;
  JsonObject scenario;
  // Seeds are 64-bit; JSON numbers are doubles, so keep the seed textual.
  scenario["seed"] = JsonValue(std::to_string(sc.seed));
  scenario["service"] = JsonValue(static_cast<std::int64_t>(sc.service));
  scenario["mode"] =
      JsonValue(std::string(sc.mode == LbMode::kPlb ? "plb" : "rss"));
  scenario["data_cores"] = JsonValue(static_cast<std::int64_t>(sc.data_cores));
  scenario["tenants"] = JsonValue(static_cast<std::int64_t>(sc.tenants));
  scenario["flows"] = JsonValue(static_cast<std::int64_t>(sc.flows));
  scenario["packet_bytes"] =
      JsonValue(static_cast<std::int64_t>(sc.packet_bytes));
  scenario["drop_flag"] = JsonValue(sc.drop_flag);
  scenario["rx_burst"] = JsonValue(static_cast<std::int64_t>(sc.rx_burst));
  scenario["horizon_ns"] = JsonValue(sc.horizon.count());
  scenario["gop_stage1_pps"] = JsonValue(sc.gop_stage1_pps);
  scenario["gop_stage2_pps"] = JsonValue(sc.gop_stage2_pps);
  scenario["gop_burst_seconds"] = JsonValue(sc.gop_burst_seconds);
  scenario["dpu_tier"] = JsonValue(sc.dpu_tier);
  scenario["fpga_capacity"] =
      JsonValue(static_cast<std::int64_t>(sc.fpga_capacity));

  JsonArray ops;
  ops.reserve(trace.ops.size());
  for (const auto& op : trace.ops) {
    JsonObject o;
    o["kind"] = JsonValue(std::string(op_kind_name(op.kind)));
    o["at"] = JsonValue(op.at.count());
    switch (op.kind) {
      case TraceOpKind::kPacket:
      case TraceOpKind::kTierPromote:
      case TraceOpKind::kTierDemote:
        o["flow"] = JsonValue(static_cast<std::int64_t>(op.flow));
        break;
      case TraceOpKind::kCoreStall:
        o["core"] = JsonValue(static_cast<std::int64_t>(op.core));
        o["duration_ns"] = JsonValue(op.duration.count());
        break;
      case TraceOpKind::kDmaFault:
        o["duration_ns"] = JsonValue(op.duration.count());
        o["magnitude"] = JsonValue(op.magnitude);
        break;
      case TraceOpKind::kReorderStall:
        o["duration_ns"] = JsonValue(op.duration.count());
        break;
    }
    ops.emplace_back(std::move(o));
  }

  JsonObject root;
  root["format"] = JsonValue(std::string("albatross-fuzz-trace-v1"));
  root["scenario"] = JsonValue(std::move(scenario));
  root["ops"] = JsonValue(std::move(ops));
  return JsonValue(std::move(root)).dump();
}

std::optional<FuzzTrace> trace_from_json(const std::string& text) {
  const auto parsed = json_parse(text);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const JsonValue& root = *parsed;
  if (root.get_string("format", "") != "albatross-fuzz-trace-v1") {
    return std::nullopt;
  }

  FuzzTrace trace;
  TraceScenario& sc = trace.scenario;
  const JsonValue& s = root["scenario"];
  if (!s.is_object()) return std::nullopt;
  sc.seed = std::strtoull(s.get_string("seed", "1").c_str(), nullptr, 10);
  sc.service = static_cast<ServiceKind>(s.get_int("service", 0) & 3);
  sc.mode = s.get_string("mode", "plb") == "rss" ? LbMode::kRss : LbMode::kPlb;
  sc.data_cores = static_cast<std::uint16_t>(s.get_int("data_cores", 2));
  sc.tenants = static_cast<std::uint32_t>(s.get_int("tenants", 16));
  sc.flows = static_cast<std::uint32_t>(s.get_int("flows", 128));
  sc.packet_bytes = static_cast<std::size_t>(s.get_int("packet_bytes", 256));
  sc.drop_flag = s.get_bool("drop_flag", true);
  sc.rx_burst = static_cast<std::size_t>(
      std::max<std::int64_t>(1, s.get_int("rx_burst", 1)));
  const NanoTime default_horizon = 10'000 * kFuzzTick;  // ticks, not ns
  sc.horizon = Nanos{s.get_int("horizon_ns", default_horizon.count())};
  sc.gop_stage1_pps = s.get_number("gop_stage1_pps", sc.gop_stage1_pps);
  sc.gop_stage2_pps = s.get_number("gop_stage2_pps", sc.gop_stage2_pps);
  sc.gop_burst_seconds =
      s.get_number("gop_burst_seconds", sc.gop_burst_seconds);
  // Pre-tier traces carry neither key; the defaults keep them parseable.
  sc.dpu_tier = s.get_bool("dpu_tier", false);
  sc.fpga_capacity = static_cast<std::size_t>(std::max<std::int64_t>(
      1, s.get_int("fpga_capacity",
                   static_cast<std::int64_t>(sc.fpga_capacity))));
  if (sc.data_cores == 0 || sc.flows == 0 || sc.tenants == 0) {
    return std::nullopt;
  }

  const JsonValue& ops = root["ops"];
  if (!ops.is_array()) return std::nullopt;
  trace.ops.reserve(ops.as_array().size());
  for (const auto& o : ops.as_array()) {
    const auto kind = op_kind_from(o.get_string("kind", ""));
    if (!kind) return std::nullopt;
    TraceOp op;
    op.kind = *kind;
    op.at = Nanos{o.get_int("at", 0)};
    op.flow = static_cast<std::uint32_t>(o.get_int("flow", 0));
    op.core = static_cast<std::uint16_t>(o.get_int("core", 0));
    op.duration = Nanos{o.get_int("duration_ns", 0)};
    op.magnitude = o.get_number("magnitude", 0.0);
    trace.ops.push_back(op);
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Shared background-traffic helpers

PoissonFlowConfig background_flow_config(double rate_pps,
                                         std::uint64_t seed) {
  PoissonFlowConfig cfg;
  cfg.num_flows = 20'000;  // scaled stand-in for 500K concurrent flows
  cfg.tenants = 200;
  cfg.rate_pps = rate_pps;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<TrafficSource> make_background_source(double rate_pps,
                                                      std::uint64_t seed) {
  return std::make_unique<PoissonFlowSource>(
      background_flow_config(rate_pps, seed));
}

}  // namespace albatross::check
