// Seeded trace generation for the conformance fuzzer. A trace is an
// explicit, replayable list of operations — packet arrivals plus optional
// fault injections — with absolute virtual timestamps, so removing an op
// during shrinking never shifts the timing of the ops that remain. The
// scenario geometry (cores, tenants, rates) is derived deterministically
// from the seed; the whole trace round-trips through JSON for --replay.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gateway/service.hpp"
#include "nic/nic_pipeline.hpp"
#include "traffic/flow_gen.hpp"

namespace albatross::check {

/// One virtual "tick" of fuzz time (the --ticks unit).
constexpr NanoTime kFuzzTick = 1 * kMicrosecond;

/// Which fault classes a generated trace may contain. Benign faults (DMA
/// slowdown, core stalls) degrade performance but must never break an
/// invariant; a reorder stall wedges the FPGA reorder check and is the
/// intentional bug the probes exist to catch.
enum class ChaosMode : std::uint8_t {
  kNone,          ///< packets only
  kBenign,        ///< + DMA faults and core stalls
  kReorderStall,  ///< + wedged reorder module (invariant-breaking)
};

enum class TraceOpKind : std::uint8_t {
  kPacket,        ///< one packet arrival from flow `flow`
  kReorderStall,  ///< wedge the pod's reorder check for `duration`
  kDmaFault,      ///< degrade the pod's DMA channels (x `magnitude`)
  kCoreStall,     ///< freeze data core `core` for `duration`
  kTierPromote,   ///< force flow `flow` one tier up (DPU tier traces)
  kTierDemote,    ///< force flow `flow` one tier down
};

struct TraceOp {
  TraceOpKind kind = TraceOpKind::kPacket;
  NanoTime at = NanoTime{0};          ///< absolute virtual time
  std::uint32_t flow = 0;   ///< kPacket: scenario flow index
  NanoTime duration = NanoTime{0};    ///< fault ops
  std::uint16_t core = 0;   ///< kCoreStall target
  double magnitude = 0.0;   ///< kDmaFault slowdown factor
};

/// Platform geometry a trace runs against, derived from the seed.
struct TraceScenario {
  std::uint64_t seed = 1;
  ServiceKind service = ServiceKind::kVpcVpc;
  LbMode mode = LbMode::kPlb;
  std::uint16_t data_cores = 2;
  std::uint32_t tenants = 16;
  std::uint32_t flows = 128;
  std::size_t packet_bytes = 256;
  bool drop_flag = true;
  /// RX burst for the pod run loop AND the source pump batch. Burst size
  /// must never change behaviour (docs/BURST_API.md); the burst
  /// differential harness runs the same trace at 1 and 32 and requires
  /// identical ledgers/verdicts.
  std::size_t rx_burst = 1;
  NanoTime horizon = 10'000 * kFuzzTick;
  /// Scaled-down GOP rates so the two-stage limiter actually meters at
  /// fuzz traffic volumes (the production 8 Mpps default never drops at
  /// these scales).
  double gop_stage1_pps = 2e6;
  double gop_stage2_pps = 5e5;
  double gop_burst_seconds = 5e-4;
  /// DPU co-offload tier (docs/DPU_TIER.md). Off by default so legacy
  /// traces and seed streams replay unchanged; fpga_capacity shrinks the
  /// FPGA tier to exercise overflow eviction under fuzz.
  bool dpu_tier = false;
  std::size_t fpga_capacity = 65'536;
};

/// A fully materialised fuzz input: scenario + time-sorted op list.
struct FuzzTrace {
  TraceScenario scenario;
  std::vector<TraceOp> ops;

  [[nodiscard]] std::size_t packet_count() const;
};

/// Derives scenario geometry and a randomized op list from `seed`.
/// `with_tier` enables the DPU co-offload tier and sprinkles forced
/// tier-migration ops into the trace; it draws from a separate Rng so
/// the packet/fault stream of a seed is identical either way.
FuzzTrace generate_trace(std::uint64_t seed, std::uint64_t ticks,
                         ChaosMode chaos, bool with_tier = false);

/// Replays a trace's packet ops as a TrafficSource: flow tuples use the
/// same canonical make_flow() layout the platform tables are populated
/// with, timestamps come verbatim from the ops.
class TraceSource final : public TrafficSource {
 public:
  explicit TraceSource(const FuzzTrace& trace);

  [[nodiscard]] std::optional<NanoTime> next_time() const override;
  PacketPtr emit() override;

 private:
  void skip_to_packet();

  const FuzzTrace* trace_;
  std::vector<FlowInfo> flows_;
  std::size_t next_op_ = 0;
};

/// JSON round-trip for --dump / --replay (uses the repo's own parser).
[[nodiscard]] std::string trace_to_json(const FuzzTrace& trace);
std::optional<FuzzTrace> trace_from_json(const std::string& text);

// --- shared background-traffic helpers (bench + tests) -------------------

/// The canonical scaled-down background mix used by the benches and the
/// integration tests: 20K concurrent flows over 200 tenants standing in
/// for the paper's 500K-flow production workload.
[[nodiscard]] PoissonFlowConfig background_flow_config(double rate_pps,
                                                       std::uint64_t seed);

[[nodiscard]] std::unique_ptr<TrafficSource> make_background_source(
    double rate_pps, std::uint64_t seed);

}  // namespace albatross::check
