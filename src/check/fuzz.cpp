#include "check/fuzz.hpp"

#include <algorithm>
#include <memory>

#include "core/platform.hpp"

namespace albatross::check {

FuzzReport run_trace(const FuzzTrace& trace) {
  const TraceScenario& sc = trace.scenario;

  PlatformConfig pc;
  pc.tenants = sc.tenants;
  pc.routes = 2'000;
  pc.tables_data_cores = sc.data_cores;
  // Scaled-down GOP so the two-stage limiter actually meters (and the
  // conformance probe sees real boundary decisions) at fuzz volumes.
  pc.nic.gop.stage1_rate_pps = sc.gop_stage1_pps;
  pc.nic.gop.stage2_rate_pps = sc.gop_stage2_pps;
  pc.nic.gop.burst_seconds = sc.gop_burst_seconds;
  // The pump batch follows the pod burst so a burst differential run
  // exercises both batching mechanisms at once.
  pc.ingress_batch = sc.rx_burst;
  Platform platform(pc);
  // Per-flow wire-order oracle armed for every fuzz run; with the DPU
  // tier this is what catches a fast-path serve overtaking a slow-path
  // predecessor (the tier handover-gate invariant).
  platform.enable_order_oracle(true);

  GwPodConfig gp;
  gp.service = sc.service;
  gp.data_cores = sc.data_cores;
  gp.drop_flag_enabled = sc.drop_flag;
  gp.rx_burst = sc.rx_burst;
  gp.seed = sc.seed | 1;
  const PodId pod = platform.create_pod(gp, 0, PktDirConfig{}, sc.mode);

  if (sc.dpu_tier) {
    DpuTierConfig tc;
    tc.fpga.capacity = sc.fpga_capacity;
    platform.nic().enable_dpu_tier(pod, tc);
  }

  ConformanceHarness harness;
  harness.attach(platform);

  // Fault ops are scheduled directly on the loop so they fire between
  // packet arrivals at their exact trace timestamps.
  for (const auto& op : trace.ops) {
    switch (op.kind) {
      case TraceOpKind::kPacket:
        break;
      case TraceOpKind::kReorderStall:
        platform.loop().schedule_at(op.at, [&platform, pod, op] {
          platform.nic().inject_reorder_stall(
              pod, platform.loop().now() + op.duration);
        });
        break;
      case TraceOpKind::kDmaFault:
        platform.loop().schedule_at(op.at, [&platform, pod, op] {
          platform.nic().inject_dma_fault(
              pod, platform.loop().now() + op.duration,
              op.magnitude > 1.0 ? op.magnitude : 8.0);
        });
        break;
      case TraceOpKind::kCoreStall:
        platform.loop().schedule_at(op.at, [&platform, pod, op] {
          platform.pod(pod).inject_core_stall(CoreId{op.core}, op.duration,
                                              platform.loop().now());
        });
        break;
      case TraceOpKind::kTierPromote:
      case TraceOpKind::kTierDemote: {
        if (!sc.dpu_tier) break;  // tier ops in a tierless trace: no-op
        // Same canonical flow layout TraceSource replays packets with.
        const std::uint32_t tenants = sc.tenants == 0 ? 1 : sc.tenants;
        const std::uint32_t fi = sc.flows == 0 ? 0 : op.flow % sc.flows;
        const FiveTuple tuple =
            make_flow(fi, 1 + static_cast<Vni>(fi % tenants), fi / tenants)
                .tuple;
        const bool promote = op.kind == TraceOpKind::kTierPromote;
        platform.loop().schedule_at(op.at, [&platform, pod, tuple, promote] {
          DpuTier& tier = platform.nic().dpu_tier(pod);
          // Forced moves run through the controller's own safety gates;
          // an unsafe op is a deterministic no-op, never a fault.
          promote ? tier.force_promote(tuple, platform.loop().now())
                  : tier.force_demote(tuple, platform.loop().now());
        });
        break;
      }
    }
  }

  platform.attach_source(std::make_unique<TraceSource>(trace), pod);

  // Drain to quiesce: the source is finite and reorder timers terminate,
  // so run() ends once the last in-flight packet resolves.
  platform.loop().run();

  harness.finish();

  FuzzReport report;
  report.violations = harness.log().total();
  report.details = harness.log().entries();
  report.packets = trace.packet_count();
  report.offered = platform.telemetry(pod).offered;
  report.delivered = platform.telemetry(pod).delivered;
  report.events = platform.loop().events_processed();
  report.ledger_checked = !harness.ledger_skipped();

  const PodTelemetry& tel = platform.telemetry(pod);
  const GwPodStats& ps = platform.pod(pod).stats();
  report.ledger.offered = tel.offered;
  report.ledger.delivered = tel.delivered;
  report.ledger.delivered_in_order = tel.delivered_in_order;
  report.ledger.delivered_disordered = tel.delivered_disordered;
  report.ledger.dropped_rate_limit = tel.dropped_rate_limit;
  report.ledger.dropped_reorder_full = tel.dropped_reorder_full;
  report.ledger.blackholed = tel.blackholed;
  report.ledger.flow_order_violations = tel.flow_order_violations;
  report.ledger.pod_processed = ps.processed;
  report.ledger.pod_forwarded = ps.forwarded;
  report.ledger.pod_dropped_service = ps.dropped_service;
  report.ledger.pod_dropped_ring = ps.dropped_ring;
  report.ledger.pod_protocol_packets = ps.protocol_packets;
  report.ledger.pod_drop_flags_sent = ps.drop_flags_sent;
  if (platform.nic().dpu_tier_enabled(pod)) {
    DpuTier& tier = platform.nic().dpu_tier(pod);
    report.tier_fpga_hits = tier.stats().fpga_hits;
    report.tier_dpu_hits = tier.stats().dpu_hits;
    report.tier_misses = tier.stats().misses;
    const TierControllerStats& cs = tier.controller().stats();
    report.tier_migrations = cs.admissions + cs.promotions + cs.demotions +
                             cs.evictions_cold + cs.removals;
    report.tier_forced_ops =
        tier.stats().forced_promotes + tier.stats().forced_demotes;
  }
  harness.detach();
  return report;
}

FuzzTrace shrink_trace(const FuzzTrace& failing, std::size_t max_runs) {
  FuzzTrace best = failing;
  if (best.ops.empty() || max_runs == 0) return best;

  std::size_t runs = 0;
  std::size_t chunk = std::max<std::size_t>(1, best.ops.size() / 2);
  while (chunk >= 1 && runs < max_runs) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < best.ops.size() && runs < max_runs;) {
      FuzzTrace candidate = best;
      const std::size_t end = std::min(start + chunk, candidate.ops.size());
      candidate.ops.erase(candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
                          candidate.ops.begin() + static_cast<std::ptrdiff_t>(end));
      ++runs;
      if (!candidate.ops.empty() && run_trace(candidate).violated()) {
        best = std::move(candidate);  // keep the cut, retry same offset
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = chunk > 1 ? chunk / 2 : 1;
  }
  return best;
}

FuzzOutcome fuzz_one(std::uint64_t seed, std::uint64_t ticks,
                     ChaosMode chaos, std::size_t rx_burst, bool with_tier) {
  FuzzOutcome out;
  out.trace = generate_trace(seed, ticks, chaos, with_tier);
  out.trace.scenario.rx_burst = rx_burst == 0 ? 1 : rx_burst;
  out.report = run_trace(out.trace);
  if (out.report.violated()) {
    out.trace = shrink_trace(out.trace);
    out.report = run_trace(out.trace);
  }
  return out;
}

}  // namespace albatross::check
