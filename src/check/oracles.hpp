// Reference oracles for differential conformance testing. Each oracle is
// the dumbest possible executable model of a production structure — an
// unordered_map for the cuckoo/flow tables, a linear rule scan for LPM, a
// closed-form allowance for the token bucket, a PSN sort for the reorder
// engine. They trade every ounce of performance for being obviously
// correct, which is exactly what makes disagreement with the optimized
// implementation meaningful (the Kugelblitz argument for trusting timed
// executable models).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "tables/lpm_dir24.hpp"  // NextHop

namespace albatross::check {

/// Hash functor so FiveTuple (and any key with std::hash) works in the
/// oracle maps without touching the production hash path.
template <typename Key>
struct OracleHash {
  std::size_t operator()(const Key& k) const { return std::hash<Key>{}(k); }
};

template <>
struct OracleHash<FiveTuple> {
  std::size_t operator()(const FiveTuple& t) const {
    const auto bytes = five_tuple_bytes(t);
    return static_cast<std::size_t>(
        fnv1a64(std::span<const std::uint8_t>{bytes}));
  }
};

/// Exact-match table oracle: mirrors CuckooTable's observable contract
/// (insert-or-update, find, erase, size) on an unordered_map.
template <typename Key, typename Value>
class MapTableOracle {
 public:
  bool insert(const Key& key, const Value& value) {
    map_[key] = value;
    return true;
  }

  [[nodiscard]] std::optional<Value> find(const Key& key) const {
    const auto it = map_.find(key);
    return it != map_.end() ? std::optional<Value>(it->second) : std::nullopt;
  }

  bool erase(const Key& key) { return map_.erase(key) != 0; }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  [[nodiscard]] const std::unordered_map<Key, Value, OracleHash<Key>>&
  entries() const {
    return map_;
  }

 private:
  std::unordered_map<Key, Value, OracleHash<Key>> map_;
};

/// Flow-table oracle: the map oracle plus last-seen timestamps and the
/// idle-timeout aging rule, mirroring FlowTable's lifecycle.
class FlowLifecycleOracle {
 public:
  explicit FlowLifecycleOracle(NanoTime idle_timeout)
      : idle_timeout_(idle_timeout) {}

  /// Returns true when the flow existed before this touch.
  bool touch(const FiveTuple& tuple, NanoTime now) {
    auto [it, fresh] = last_seen_.try_emplace(tuple, now);
    if (!fresh) it->second = now;
    return !fresh;
  }

  bool erase(const FiveTuple& tuple) { return last_seen_.erase(tuple) != 0; }

  /// Removes flows idle beyond the timeout; returns the count removed.
  /// Iteration order does not leak: every expired entry is erased no
  /// matter where the hash map puts it, and only the count is returned.
  std::size_t age(NanoTime now) {
    std::size_t removed = 0;
    for (auto it = last_seen_.begin();  // lint:allow(unordered-iteration)
         it != last_seen_.end();) {
      if (now - it->second > idle_timeout_) {
        it = last_seen_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  [[nodiscard]] bool contains(const FiveTuple& tuple) const {
    return last_seen_.contains(tuple);
  }
  [[nodiscard]] std::size_t size() const { return last_seen_.size(); }

 private:
  NanoTime idle_timeout_;
  std::unordered_map<FiveTuple, NanoTime, OracleHash<FiveTuple>> last_seen_;
};

/// Linear-scan LPM oracle: O(rules) longest-prefix-match over an
/// unindexed rule list. Slower than LpmTrie but with no shared structure
/// at all, so it cross-checks both LpmDir24 and the trie.
class LinearLpmOracle {
 public:
  bool add(Ipv4Address prefix, std::uint8_t depth, NextHop hop);
  bool remove(Ipv4Address prefix, std::uint8_t depth);
  [[nodiscard]] std::optional<NextHop> lookup(Ipv4Address addr) const;
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

 private:
  struct Rule {
    std::uint32_t value = 0;  ///< prefix bits, masked
    std::uint32_t mask = 0;
    std::uint8_t depth = 0;
    NextHop hop = 0;
  };
  std::vector<Rule> rules_;
};

/// Analytic token-bucket oracle: tracks the allowance in closed form
/// (level = min(burst, level + rate * dt)) so every production meter can
/// be checked against the textbook definition. `divergence` reports how
/// far the observed decision sat from the oracle's decision boundary.
class TokenBucketOracle {
 public:
  TokenBucketOracle() = default;
  TokenBucketOracle(double rate_pps, double burst_pkts, NanoTime birth = NanoTime{})
      : rate_pps_(rate_pps), burst_(burst_pkts), level_(burst_pkts),
        last_(birth) {}

  /// Allowance at `now` without consuming.
  [[nodiscard]] double level_at(NanoTime now) const;

  /// Charges one packet; true = conforming per the analytic model.
  bool consume(NanoTime now, double pkts = 1.0);

  /// Forces the oracle to agree with an observed decision so one
  /// boundary-rounding disagreement does not cascade into drift.
  void resync(bool observed_pass, double pkts = 1.0);

  [[nodiscard]] double rate_pps() const { return rate_pps_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  double rate_pps_ = 0.0;
  double burst_ = 0.0;
  double level_ = 0.0;
  NanoTime last_ = NanoTime{0};
};

/// Sort-by-PSN reorder oracle: records every PSN handed to the reorder
/// engine with its fate (kept or drop-flagged); the expected in-order
/// emission sequence under no timeouts is simply the kept PSNs sorted
/// ascending.
class ReorderSortOracle {
 public:
  void record(Psn psn, bool dropped) {
    if (!dropped) kept_.push_back(psn);
  }

  /// Expected in-order emission sequence (ascending PSN).
  [[nodiscard]] std::vector<Psn> expected() const {
    std::vector<Psn> out = kept_;
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::size_t kept_count() const { return kept_.size(); }

 private:
  std::vector<Psn> kept_;
};

}  // namespace albatross::check
