// Invariant probes: the runtime half of the conformance subsystem. Each
// probe implements one of the hook interfaces in check/hooks.hpp and
// checks mechanism-level invariants that must hold regardless of traffic
// shape — packet conservation, exactly-once FIFO resolution, bounded
// head-of-line latency, meter conformance against the analytic oracle.
//
// What is deliberately NOT an invariant: disorder, best-effort emissions
// and HOL timeouts. All three are legal behaviour of the paper's design
// (the service-time tail crosses the 100us timeout with small but
// non-zero probability), so the probes bound *how* the mechanism resolves
// them rather than asserting they never happen.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/hooks.hpp"
#include "check/oracles.hpp"
#include "common/types.hpp"
#include "nic/rate_limiter.hpp"

namespace albatross {
class Platform;
}  // namespace albatross

namespace albatross::check {

/// One detected invariant breach.
struct InvariantViolation {
  std::string invariant;  ///< stable id, e.g. "reorder.latency"
  std::string detail;     ///< human-readable specifics
  NanoTime at = NanoTime{0};        ///< virtual time of detection
};

/// Bounded violation sink: every report is counted, the first
/// `kMaxDetailed` keep their details (a wedged module would otherwise
/// produce one violation per queued packet).
class ViolationLog {
 public:
  static constexpr std::size_t kMaxDetailed = 64;

  void report(std::string invariant, std::string detail, NanoTime at);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<InvariantViolation>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t count(const std::string& invariant) const;

 private:
  std::uint64_t total_ = 0;
  std::vector<InvariantViolation> entries_;
  std::unordered_map<std::string, std::uint64_t> per_invariant_;
};

/// Aggregate event counters a probe accumulated (exported as metrics).
struct ReorderProbeCounters {
  std::uint64_t reserves = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t alias_writebacks = 0;  ///< legal 12-bit aliases observed
  std::uint64_t best_effort = 0;
  std::uint64_t resolved_in_order = 0;
  std::uint64_t resolved_drop = 0;
  std::uint64_t resolved_timeout = 0;
};

/// Watches one pod's reorder queues. Invariants:
///   reorder.reserve-order   PSNs are assigned strictly sequentially
///   reorder.head-order      heads resolve strictly sequentially
///   reorder.double-resolve  a PSN resolves at most once
///   reorder.latency         reserve->resolve latency <= timeout + slack
///                           (a wedged reorder module breaks exactly this)
///   reorder.premature-timeout  a kTimeout resolution actually waited
///   reorder.inorder-writeback  Case-4 tx requires a non-drop write-back
///   reorder.dropflag-writeback drop release requires a drop write-back
///   reorder.leak            no FIFO entry outstanding at quiesce
class ReorderInvariantProbe final : public ReorderProbeHook {
 public:
  ReorderInvariantProbe(ViolationLog& log, PodId pod,
                        NanoTime timeout = kReorderTimeout,
                        NanoTime slack = 2 * kMicrosecond)
      : log_(&log), pod_(pod), timeout_(timeout), slack_(slack) {}

  void on_reserve(std::uint16_t ordq, Psn psn, NanoTime now) override;
  void on_writeback(std::uint16_t ordq, Psn psn, bool drop,
                    NanoTime now) override;
  void on_resolve(std::uint16_t ordq, Psn psn, ReorderResolution how,
                  NanoTime reserved_at, NanoTime now) override;
  void on_best_effort(std::uint16_t ordq, Psn psn, NanoTime now) override;

  /// End-of-run check: leaked (never-resolved) FIFO entries.
  void finish(NanoTime now);

  [[nodiscard]] const ReorderProbeCounters& counters() const {
    return counters_;
  }

 private:
  struct Outstanding {
    NanoTime reserved_at = NanoTime{0};
    bool wb_seen = false;
    bool wb_drop = false;
  };
  struct QueueState {
    bool seen = false;
    Psn next_reserve = 0;  ///< next PSN reserve() must hand out
    Psn next_head = 0;     ///< next PSN on_resolve must report
    std::unordered_map<Psn, Outstanding> outstanding;
  };

  ViolationLog* log_;
  PodId pod_;
  NanoTime timeout_;
  NanoTime slack_;
  ReorderProbeCounters counters_;
  std::unordered_map<std::uint16_t, QueueState> queues_;
};

/// Mirrors every stage of the tenant rate limiter with an analytic
/// TokenBucketOracle and flags decisions that diverge by more than one
/// token ("meter.conformance"). One-token tolerance absorbs the
/// boundary case where the observed meter and the oracle disagree on a
/// packet sitting exactly at the allowance; the oracle resyncs after a
/// divergence so a single rounding step cannot cascade.
class MeterConformanceProbe final : public RateLimiterProbeHook {
 public:
  MeterConformanceProbe(ViolationLog& log, RateLimiterConfig cfg)
      : log_(&log), cfg_(cfg) {}

  void on_admit(Vni vni, RlStage stage, bool passed, NanoTime now) override;

  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] std::uint64_t divergences() const { return divergences_; }

 private:
  TokenBucketOracle& bucket_for(RlStage stage, Vni vni);

  ViolationLog* log_;
  RateLimiterConfig cfg_;
  std::uint64_t checks_ = 0;
  std::uint64_t divergences_ = 0;
  std::unordered_map<std::uint32_t, TokenBucketOracle> stage1_;
  std::unordered_map<std::uint32_t, TokenBucketOracle> stage2_;
  std::unordered_map<Vni, TokenBucketOracle> pre_;
};

/// Per-pod CPU-side packet ledger counters.
struct PodLedgerCounters {
  std::uint64_t data_rx = 0;
  std::uint64_t forwards = 0;
  std::uint64_t ring_drops = 0;
  std::uint64_t service_drops = 0;
  std::uint64_t protocol_local = 0;  ///< consumed by ctrl plane, not lost
};

/// Records the fate of every data-path delivery; the conservation check
/// itself runs in ConformanceHarness::finish().
class PodLedgerProbe final : public GwPodProbeHook {
 public:
  explicit PodLedgerProbe(ViolationLog& log) : log_(&log) {}

  void on_data_rx(PodId pod, CoreId core, NanoTime now) override;
  void on_forward(PodId pod, CoreId core, NanoTime now) override;
  void on_drop(PodId pod, CoreId core, PodDropKind kind,
               NanoTime now) override;

  [[nodiscard]] const PodLedgerCounters& pod_counters(PodId pod) const;

 private:
  PodLedgerCounters& slot(PodId pod);

  ViolationLog* log_;
  std::vector<PodLedgerCounters> per_pod_;
};

/// Arms every probe on a Platform and owns the shared violation log.
/// Usage:
///   ConformanceHarness harness;
///   harness.attach(platform);      // after create_pod calls
///   ... run the simulation to quiesce ...
///   harness.finish();              // leak + conservation checks
///   harness.log().total() == 0     // conformant run
class ConformanceHarness {
 public:
  struct Config {
    NanoTime reorder_slack = 2 * kMicrosecond;
  };

  ConformanceHarness() : ConformanceHarness(Config{}) {}
  explicit ConformanceHarness(Config cfg) : cfg_(cfg) {}
  ~ConformanceHarness();

  ConformanceHarness(const ConformanceHarness&) = delete;
  ConformanceHarness& operator=(const ConformanceHarness&) = delete;

  /// Arms probes on every registered pod, the shared rate limiter and
  /// the event loop. Call after all create_pod() calls.
  void attach(Platform& platform);

  /// Detaches all probes (also done by the destructor).
  void detach();

  /// End-of-run checks: reorder-FIFO leaks and the packet-conservation
  /// ledger. Only meaningful once the event loop has drained; ledger
  /// checks are skipped (and counted in `ledger_skipped`) while events
  /// are still pending. Returns the total violation count.
  std::uint64_t finish();

  /// Runs the packet-conservation ledger immediately, regardless of
  /// pending loop events. For harnesses whose control plane keeps
  /// perpetual timers alive (BFD probes never let pending() hit zero):
  /// the caller guarantees the *data plane* is drained — e.g. by
  /// quiescing every source and running a drain window — and the ledger
  /// equations then balance even though the loop never does. Returns
  /// the total violation count.
  std::uint64_t check_ledger_now();

  [[nodiscard]] const ViolationLog& log() const { return log_; }
  [[nodiscard]] bool ledger_skipped() const { return ledger_skipped_; }
  [[nodiscard]] std::uint64_t events_observed() const {
    return events_observed_;
  }

  /// Aggregated reorder counters across pods (metrics export).
  [[nodiscard]] ReorderProbeCounters reorder_counters() const;
  [[nodiscard]] const PodLedgerProbe& ledger() const { return ledger_probe_; }
  [[nodiscard]] const MeterConformanceProbe* meter() const {
    return meter_probe_.get();
  }

 private:
  Config cfg_;
  Platform* platform_ = nullptr;
  ViolationLog log_;
  std::vector<std::unique_ptr<ReorderInvariantProbe>> reorder_probes_;
  std::unique_ptr<MeterConformanceProbe> meter_probe_;
  PodLedgerProbe ledger_probe_{log_};
  NanoTime last_event_time_ = NanoTime{0};
  std::uint64_t events_observed_ = 0;
  bool ledger_skipped_ = false;
};

}  // namespace albatross::check
