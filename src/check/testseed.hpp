// Seed plumbing for property tests: every randomized test derives its
// seed through test_seed() so a CI failure can be reproduced locally with
//   ALBATROSS_TEST_SEED=<n> ctest -R <test>
// Tests wrap assertions in SCOPED_TRACE(seed_banner(seed)) so the seed is
// printed whenever one fails.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace albatross::check {

/// ALBATROSS_TEST_SEED (decimal) when set, `fallback` otherwise.
inline std::uint64_t test_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("ALBATROSS_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

[[nodiscard]] inline std::string seed_banner(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (rerun with ALBATROSS_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace albatross::check
