// Fuzz driver: runs a generated (or replayed) trace through the real
// platform with every invariant probe armed, and greedily shrinks a
// violating trace to a small reproducer before dumping it as JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/probes.hpp"
#include "check/trace_gen.hpp"

namespace albatross::check {

/// Packet-conservation ledger of one trace execution: every offered
/// packet must be accounted for in exactly one bucket. The burst
/// differential harness compares these field-for-field between
/// rx_burst=1 and rx_burst=32 runs of the same trace — burst size must
/// never change any of them (docs/BURST_API.md).
struct PodLedger {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_in_order = 0;
  std::uint64_t delivered_disordered = 0;
  std::uint64_t dropped_rate_limit = 0;
  std::uint64_t dropped_reorder_full = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t flow_order_violations = 0;
  std::uint64_t pod_processed = 0;
  std::uint64_t pod_forwarded = 0;
  std::uint64_t pod_dropped_service = 0;
  std::uint64_t pod_dropped_ring = 0;
  std::uint64_t pod_protocol_packets = 0;
  std::uint64_t pod_drop_flags_sent = 0;

  bool operator==(const PodLedger&) const = default;
};

/// Outcome of one trace execution.
struct FuzzReport {
  std::uint64_t violations = 0;
  std::vector<InvariantViolation> details;  ///< first ViolationLog entries
  std::uint64_t packets = 0;        ///< packet ops in the trace
  std::uint64_t offered = 0;        ///< packets that reached ingress
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;         ///< loop events processed
  bool ledger_checked = false;      ///< false = loop never quiesced
  PodLedger ledger;                 ///< full conservation accounting
  // DPU tier accounting, all zero when the trace ran without the tier.
  // Deliberately OUTSIDE PodLedger: the tier differential folds tier
  // hits back into the CPU buckets, it never diffs these directly.
  std::uint64_t tier_fpga_hits = 0;
  std::uint64_t tier_dpu_hits = 0;
  std::uint64_t tier_misses = 0;
  std::uint64_t tier_migrations = 0;  ///< admissions+promotions+demotions
  std::uint64_t tier_forced_ops = 0;  ///< forced moves that took effect

  [[nodiscard]] bool violated() const { return violations != 0; }
};

/// Builds the trace's platform, arms a ConformanceHarness, injects the
/// fault ops, replays the packet ops and runs the loop to quiesce.
FuzzReport run_trace(const FuzzTrace& trace);

/// Greedy ddmin-style shrink: repeatedly removes chunks of ops while the
/// trace still violates, halving the chunk size when stuck. Bounded by
/// `max_runs` re-executions so shrinking stays interactive.
FuzzTrace shrink_trace(const FuzzTrace& failing, std::size_t max_runs = 200);

/// One end-to-end fuzz iteration: generate, run, shrink on violation.
struct FuzzOutcome {
  FuzzTrace trace;      ///< shrunk when violated, original otherwise
  FuzzReport report;    ///< report for `trace` as returned
};

/// `rx_burst` overrides the generated scenario's pod/pump burst size
/// (1 = legacy per-packet activation; the burst differential runs the
/// same seed at 1 and 32 and diffs the reports). `with_tier` generates
/// the trace with the DPU co-offload tier enabled plus forced
/// tier-migration ops (`albatross_sim fuzz --tier`).
FuzzOutcome fuzz_one(std::uint64_t seed, std::uint64_t ticks,
                     ChaosMode chaos, std::size_t rx_burst = 1,
                     bool with_tier = false);

}  // namespace albatross::check
