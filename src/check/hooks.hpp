// Conformance hook interfaces. The production modules (reorder engine,
// tenant rate limiter, GW pod) each expose an optional probe pointer;
// when armed, they report the raw events an invariant checker needs —
// reservations, write-backs, emissions, admit verdicts, core completions.
// The interfaces live here (depending only on common/types.hpp) so the
// data-path headers can include them without pulling in src/check's
// oracles; a null probe costs one predictable branch per event.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace albatross {

/// How a reorder-FIFO entry was resolved (head pointer advanced).
enum class ReorderResolution : std::uint8_t {
  kInOrder,   ///< Case 4: transmitted in order
  kDropFlag,  ///< Case 4 with the active drop flag: released, no emission
  kTimeout,   ///< Case 1: HOL timeout release
};

/// Observes one pod's reorder queues. `ordq` is the queue index inside
/// the pod's PLB engine.
class ReorderProbeHook {
 public:
  virtual ~ReorderProbeHook() = default;

  /// PSN reserved at dispatch (FIFO append).
  virtual void on_reserve(std::uint16_t ordq, Psn psn, NanoTime now) = 0;

  /// CPU write-back passed the legal check (BUF/BITMAP updated).
  virtual void on_writeback(std::uint16_t ordq, Psn psn, bool drop,
                            NanoTime now) = 0;

  /// FIFO head resolved: the entry reserved at `reserved_at` left the
  /// window (in-order tx, drop release, or HOL timeout).
  virtual void on_resolve(std::uint16_t ordq, Psn psn,
                          ReorderResolution how, NanoTime reserved_at,
                          NanoTime now) = 0;

  /// A packet left the engine best-effort (legal-check failure, Case 3
  /// alias, or a stale packet flushed by a timeout release).
  virtual void on_best_effort(std::uint16_t ordq, Psn psn, NanoTime now) = 0;
};

/// Which stage of the two-stage limiter produced a verdict.
enum class RlStage : std::uint8_t {
  kBypass,    ///< pre_check bypass entry (top-tier tenant)
  kPreMeter,  ///< installed heavy-hitter meter
  kStage1,    ///< color_table
  kStage2,    ///< meter_table
};

/// Observes every admit decision of the tenant rate limiter. The verdict
/// is reported as pass/drop plus the deciding stage so a conformance
/// checker can mirror each stage's token bucket analytically.
class RateLimiterProbeHook {
 public:
  virtual ~RateLimiterProbeHook() = default;
  virtual void on_admit(Vni vni, RlStage stage, bool passed,
                        NanoTime now) = 0;
};

/// Why a packet delivered to a GW pod never produced an egress.
enum class PodDropKind : std::uint8_t {
  kRing,      ///< RX descriptor ring overflow
  kService,   ///< ACL / rate-rule drop on the data core
  kProtocol,  ///< consumed by the control plane (not a loss)
};

/// Observes a GW pod's packet ledger: every data-path delivery must end
/// as exactly one forward or one accounted drop.
class GwPodProbeHook {
 public:
  virtual ~GwPodProbeHook() = default;
  virtual void on_data_rx(PodId pod, CoreId core, NanoTime now) = 0;
  virtual void on_forward(PodId pod, CoreId core, NanoTime now) = 0;
  virtual void on_drop(PodId pod, CoreId core, PodDropKind kind,
                       NanoTime now) = 0;
};

}  // namespace albatross
