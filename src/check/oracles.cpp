#include "check/oracles.hpp"

namespace albatross::check {

namespace {

constexpr std::uint32_t prefix_mask(std::uint8_t depth) {
  return depth == 0 ? 0u : ~std::uint32_t{0} << (32 - depth);
}

}  // namespace

bool LinearLpmOracle::add(Ipv4Address prefix, std::uint8_t depth,
                          NextHop hop) {
  if (depth > 32 || hop > kMaxNextHop) return false;
  const std::uint32_t mask = prefix_mask(depth);
  const std::uint32_t value = prefix.addr & mask;
  for (auto& r : rules_) {
    if (r.depth == depth && r.value == value) {
      r.hop = hop;  // same insert-or-update contract as LpmDir24/LpmTrie
      return true;
    }
  }
  rules_.push_back(Rule{value, mask, depth, hop});
  return true;
}

bool LinearLpmOracle::remove(Ipv4Address prefix, std::uint8_t depth) {
  if (depth > 32) return false;
  const std::uint32_t value = prefix.addr & prefix_mask(depth);
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->depth == depth && it->value == value) {
      rules_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<NextHop> LinearLpmOracle::lookup(Ipv4Address addr) const {
  const Rule* best = nullptr;
  for (const auto& r : rules_) {
    if ((addr.addr & r.mask) != r.value) continue;
    if (best == nullptr || r.depth > best->depth) best = &r;
  }
  return best != nullptr ? std::optional<NextHop>(best->hop) : std::nullopt;
}

double TokenBucketOracle::level_at(NanoTime now) const {
  if (rate_pps_ <= 0.0) return burst_;
  const NanoTime dt = now > last_ ? now - last_ : NanoTime{};
  const double refilled =
      level_ + rate_pps_ * nanos_to_seconds(dt);
  return refilled < burst_ ? refilled : burst_;
}

bool TokenBucketOracle::consume(NanoTime now, double pkts) {
  if (rate_pps_ <= 0.0) return true;  // unlimited, same as TokenBucket
  level_ = level_at(now);
  if (now > last_) last_ = now;
  if (level_ >= pkts) {
    level_ -= pkts;
    return true;
  }
  return false;
}

void TokenBucketOracle::resync(bool observed_pass, double pkts) {
  if (rate_pps_ <= 0.0) return;
  if (observed_pass) {
    // We predicted a drop but the meter passed: put the level at empty
    // post-consume, i.e. the meter saw exactly enough tokens.
    level_ = 0.0;
  } else {
    // We predicted a pass but the meter dropped: undo our charge.
    level_ += pkts;
    if (level_ > burst_) level_ = burst_;
  }
}

}  // namespace albatross::check
