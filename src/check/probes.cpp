#include "check/probes.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/hash.hpp"
#include "core/platform.hpp"

namespace albatross::check {

// ---------------------------------------------------------------------------
// ViolationLog

void ViolationLog::report(std::string invariant, std::string detail,
                          NanoTime at) {
  ++total_;
  ++per_invariant_[invariant];
  if (entries_.size() < kMaxDetailed) {
    entries_.push_back(
        InvariantViolation{std::move(invariant), std::move(detail), at});
  }
}

std::uint64_t ViolationLog::count(const std::string& invariant) const {
  const auto it = per_invariant_.find(invariant);
  return it != per_invariant_.end() ? it->second : 0;
}

// ---------------------------------------------------------------------------
// ReorderInvariantProbe

namespace {

std::string reorder_ctx(PodId pod, std::uint16_t ordq, Psn psn) {
  return "pod=" + std::to_string(pod) + " ordq=" + std::to_string(ordq) +
         " psn=" + std::to_string(psn);
}

}  // namespace

void ReorderInvariantProbe::on_reserve(std::uint16_t ordq, Psn psn,
                                       NanoTime now) {
  ++counters_.reserves;
  QueueState& q = queues_[ordq];
  if (!q.seen) {
    q.seen = true;
    q.next_reserve = psn;
    q.next_head = psn;
  }
  if (psn != q.next_reserve) {
    log_->report("reorder.reserve-order",
                 reorder_ctx(pod_, ordq, psn) +
                     " expected=" + std::to_string(q.next_reserve),
                 now);
    // Re-anchor so one skip does not flood the log.
    q.next_reserve = psn;
  }
  q.next_reserve = psn + 1;
  q.outstanding.emplace(psn, Outstanding{now, false, false});
}

void ReorderInvariantProbe::on_writeback(std::uint16_t ordq, Psn psn,
                                         bool drop, NanoTime now) {
  (void)now;
  ++counters_.writebacks;
  QueueState& q = queues_[ordq];
  const auto it = q.outstanding.find(psn);
  if (it == q.outstanding.end()) {
    // A write-back for a PSN we no longer track: a stale packet whose low
    // 12 bits alias into the window after a wrap. Legal (the hardware's
    // cheap legal check admits it; Case 3 cleans it up) — count, no flag.
    ++counters_.alias_writebacks;
    return;
  }
  it->second.wb_seen = true;
  it->second.wb_drop = drop;
}

void ReorderInvariantProbe::on_resolve(std::uint16_t ordq, Psn psn,
                                       ReorderResolution how,
                                       NanoTime reserved_at, NanoTime now) {
  switch (how) {
    case ReorderResolution::kInOrder:
      ++counters_.resolved_in_order;
      break;
    case ReorderResolution::kDropFlag:
      ++counters_.resolved_drop;
      break;
    case ReorderResolution::kTimeout:
      ++counters_.resolved_timeout;
      break;
  }

  QueueState& q = queues_[ordq];
  const auto it = q.outstanding.find(psn);
  if (it == q.outstanding.end()) {
    log_->report("reorder.double-resolve",
                 reorder_ctx(pod_, ordq, psn) + " resolved without a live"
                 " reservation",
                 now);
    return;
  }

  if (psn != q.next_head) {
    log_->report("reorder.head-order",
                 reorder_ctx(pod_, ordq, psn) +
                     " expected head=" + std::to_string(q.next_head),
                 now);
  }
  q.next_head = psn + 1;

  // The head must leave the window within timeout + slack of its
  // reservation: the platform's reorder timer fires just past the
  // deadline, so anything later means the reorder check was not running
  // (e.g. a wedged module).
  const NanoTime waited = now - it->second.reserved_at;
  if (waited > timeout_ + slack_) {
    log_->report("reorder.latency",
                 reorder_ctx(pod_, ordq, psn) + " waited " +
                     std::to_string(waited.count()) + "ns > timeout+slack=" +
                     std::to_string((timeout_ + slack_).count()) + "ns",
                 now);
  }
  if (reserved_at != it->second.reserved_at) {
    log_->report("reorder.timestamp",
                 reorder_ctx(pod_, ordq, psn) +
                     " engine reserved_at=" + std::to_string(reserved_at.count()) +
                     " probe saw " + std::to_string(it->second.reserved_at.count()),
                 now);
  }

  switch (how) {
    case ReorderResolution::kTimeout:
      if (waited <= timeout_) {
        log_->report("reorder.premature-timeout",
                     reorder_ctx(pod_, ordq, psn) + " released after only " +
                         std::to_string(waited.count()) + "ns",
                     now);
      }
      break;
    case ReorderResolution::kInOrder:
      if (!it->second.wb_seen || it->second.wb_drop) {
        log_->report("reorder.inorder-writeback",
                     reorder_ctx(pod_, ordq, psn) +
                         " in-order tx without a matching non-drop"
                         " write-back",
                     now);
      }
      break;
    case ReorderResolution::kDropFlag:
      if (!it->second.wb_seen || !it->second.wb_drop) {
        log_->report("reorder.dropflag-writeback",
                     reorder_ctx(pod_, ordq, psn) +
                         " drop release without a drop write-back",
                     now);
      }
      break;
  }

  q.outstanding.erase(it);
}

void ReorderInvariantProbe::on_best_effort(std::uint16_t ordq, Psn psn,
                                           NanoTime now) {
  (void)ordq;
  (void)psn;
  (void)now;
  ++counters_.best_effort;
}

void ReorderInvariantProbe::finish(NanoTime now) {
  // Leak reports must come out in a stable order regardless of hash-map
  // layout, so collect the queue ids and sort before reporting.
  std::vector<std::uint16_t> leaked;
  for (const auto& [ordq, q] : queues_) {  // lint:allow(unordered-iteration)
    if (!q.outstanding.empty()) leaked.push_back(ordq);
  }
  std::sort(leaked.begin(), leaked.end());
  for (const auto ordq : leaked) {
    log_->report("reorder.leak",
                 "pod=" + std::to_string(pod_) + " ordq=" +
                     std::to_string(ordq) + " entries=" +
                     std::to_string(queues_.at(ordq).outstanding.size()) +
                     " never resolved",
                 now);
  }
}

// ---------------------------------------------------------------------------
// MeterConformanceProbe

TokenBucketOracle& MeterConformanceProbe::bucket_for(RlStage stage, Vni vni) {
  const double b = cfg_.burst_seconds;
  switch (stage) {
    case RlStage::kPreMeter: {
      auto [it, fresh] = pre_.try_emplace(
          vni, TokenBucketOracle(cfg_.pre_meter_rate_pps,
                                 cfg_.pre_meter_rate_pps * b));
      return it->second;
    }
    case RlStage::kStage1: {
      const std::uint32_t slot = vni % cfg_.color_entries;
      auto [it, fresh] = stage1_.try_emplace(
          slot,
          TokenBucketOracle(cfg_.stage1_rate_pps, cfg_.stage1_rate_pps * b));
      return it->second;
    }
    default: {  // kStage2 (kBypass never reaches here)
      const std::uint32_t slot =
          static_cast<std::uint32_t>(mix64(vni) % cfg_.meter_entries);
      auto [it, fresh] = stage2_.try_emplace(
          slot,
          TokenBucketOracle(cfg_.stage2_rate_pps, cfg_.stage2_rate_pps * b));
      return it->second;
    }
  }
}

void MeterConformanceProbe::on_admit(Vni vni, RlStage stage, bool passed,
                                     NanoTime now) {
  ++checks_;
  if (stage == RlStage::kBypass) {
    if (!passed) {
      log_->report("meter.bypass",
                   "vni=" + std::to_string(vni) + " bypass entry dropped",
                   now);
    }
    return;
  }

  TokenBucketOracle& oracle = bucket_for(stage, vni);
  const double level = oracle.level_at(now);  // pre-consume allowance
  const bool predicted = oracle.consume(now);
  if (predicted == passed) return;

  ++divergences_;
  // One-token conformance band: a divergence only counts as a violation
  // when the analytic allowance sat more than one token away from the
  // decision boundary (level >= 1 admits, so the boundary is 1.0).
  const double distance = std::abs(level - 1.0);
  if (distance > 1.0) {
    log_->report(
        "meter.conformance",
        "vni=" + std::to_string(vni) + " stage=" +
            std::to_string(static_cast<int>(stage)) + " meter said " +
            (passed ? "pass" : "drop") + " but analytic level=" +
            std::to_string(level) + " tokens",
        now);
  }
  oracle.resync(passed);
}

// ---------------------------------------------------------------------------
// PodLedgerProbe

PodLedgerCounters& PodLedgerProbe::slot(PodId pod) {
  if (per_pod_.size() <= pod) per_pod_.resize(pod + 1);
  return per_pod_[pod];
}

const PodLedgerCounters& PodLedgerProbe::pod_counters(PodId pod) const {
  static const PodLedgerCounters kEmpty;
  return pod < per_pod_.size() ? per_pod_[pod] : kEmpty;
}

void PodLedgerProbe::on_data_rx(PodId pod, CoreId core, NanoTime now) {
  (void)core;
  (void)now;
  ++slot(pod).data_rx;
}

void PodLedgerProbe::on_forward(PodId pod, CoreId core, NanoTime now) {
  (void)core;
  (void)now;
  ++slot(pod).forwards;
}

void PodLedgerProbe::on_drop(PodId pod, CoreId core, PodDropKind kind,
                             NanoTime now) {
  (void)core;
  (void)now;
  PodLedgerCounters& c = slot(pod);
  switch (kind) {
    case PodDropKind::kRing:
      ++c.ring_drops;
      break;
    case PodDropKind::kService:
      ++c.service_drops;
      break;
    case PodDropKind::kProtocol:
      ++c.protocol_local;
      break;
  }
}

// ---------------------------------------------------------------------------
// ConformanceHarness

ConformanceHarness::~ConformanceHarness() { detach(); }

void ConformanceHarness::attach(Platform& platform) {
  detach();
  platform_ = &platform;

  for (PodId pod = 0; pod < platform.pod_count(); ++pod) {
    auto probe = std::make_unique<ReorderInvariantProbe>(
        log_, pod, kReorderTimeout, cfg_.reorder_slack);
    platform.nic().attach_reorder_probe(pod, probe.get());
    platform.pod(pod).set_probe(&ledger_probe_);
    reorder_probes_.push_back(std::move(probe));
  }

  meter_probe_ = std::make_unique<MeterConformanceProbe>(
      log_, platform.nic().limiter().config());
  platform.nic().attach_limiter_probe(meter_probe_.get());

  // Virtual-clock monotonicity: the loop promises time never runs
  // backwards; the observer asserts it on every event.
  platform.loop().set_observer([this](NanoTime at) {
    ++events_observed_;
    if (at < last_event_time_) {
      log_.report("clock.monotonic",
                   "event at " + std::to_string(at.count()) + "ns after clock hit " +
                       std::to_string(last_event_time_.count()) + "ns",
                   at);
    } else {
      last_event_time_ = at;
    }
  });
}

void ConformanceHarness::detach() {
  if (platform_ == nullptr) return;
  for (PodId pod = 0; pod < platform_->pod_count(); ++pod) {
    platform_->nic().attach_reorder_probe(pod, nullptr);
    platform_->pod(pod).set_probe(nullptr);
  }
  platform_->nic().attach_limiter_probe(nullptr);
  platform_->loop().set_observer(nullptr);
  reorder_probes_.clear();
  meter_probe_.reset();
  platform_ = nullptr;
}

std::uint64_t ConformanceHarness::finish() {
  if (platform_ == nullptr) return log_.total();
  const NanoTime now = platform_->loop().now();

  for (auto& probe : reorder_probes_) probe->finish(now);

  // The conservation ledger only balances once every in-flight packet
  // has either hit the wire or an accounted drop.
  ledger_skipped_ = platform_->loop().pending() != 0;
  if (ledger_skipped_) return log_.total();

  return check_ledger_now();
}

std::uint64_t ConformanceHarness::check_ledger_now() {
  if (platform_ == nullptr) return log_.total();
  const NanoTime now = platform_->loop().now();
  ledger_skipped_ = false;

  std::uint64_t delivered_total = 0;
  std::uint64_t offload_total = 0;
  std::uint64_t forwards_total = 0;
  for (PodId pod = 0; pod < platform_->pod_count(); ++pod) {
    const PodTelemetry& tel = platform_->telemetry(pod);
    const GwPodStats& ps = platform_->pod(pod).stats();
    const PodLedgerCounters& lc = ledger_probe_.pod_counters(pod);
    // With the DPU tier, FPGA hits still count through the pod's
    // SessionOffload stats (DpuTier borrows the same table); DPU-served
    // packets are a second NIC-resident bucket alongside them.
    const std::uint64_t dpu_hits =
        platform_->nic().dpu_tier_enabled(pod)
            ? platform_->nic().dpu_tier(pod).stats().dpu_hits
            : 0;
    const std::uint64_t offload_hits =
        (platform_->nic().session_offload_enabled(pod)
             ? platform_->nic().session_offload(pod).stats().fast_path_hits
             : 0) +
        dpu_hits;
    // Priority-queue deliveries skip on_data_rx; protocol_packets counts
    // both those and data-path packets the ctrl plane consumed.
    const std::uint64_t priority_rx = ps.protocol_packets - lc.protocol_local;

    // Ingress conservation: every offered packet lands in exactly one
    // accounted bucket.
    const std::uint64_t accounted = tel.blackholed + tel.dropped_rate_limit +
                                    tel.dropped_reorder_full + offload_hits +
                                    priority_rx + lc.data_rx;
    if (accounted != tel.offered) {
      log_.report("ledger.ingress",
                  "pod=" + std::to_string(pod) + " offered=" +
                      std::to_string(tel.offered) + " accounted=" +
                      std::to_string(accounted),
                  now);
    }

    // CPU conservation: every data-path delivery ends as exactly one
    // forward or one accounted drop.
    const std::uint64_t cpu_out = lc.forwards + lc.ring_drops +
                                  lc.service_drops + lc.protocol_local;
    if (cpu_out != lc.data_rx) {
      log_.report("ledger.pod",
                  "pod=" + std::to_string(pod) + " data_rx=" +
                      std::to_string(lc.data_rx) + " outcomes=" +
                      std::to_string(cpu_out),
                  now);
    }

    delivered_total += tel.delivered;
    offload_total += offload_hits;
    forwards_total += lc.forwards;
  }

  // Wire conservation (aggregate — the basic pipeline is shared): each
  // CPU forward or offload hit produces exactly one wire emission, minus
  // split headers whose payload slot was reclaimed in flight.
  const std::uint64_t split_drops =
      platform_->nic().basic().stats().headers_dropped_payload_gone;
  const std::uint64_t expected_wire =
      offload_total + forwards_total - split_drops;
  if (delivered_total != expected_wire) {
    log_.report("ledger.wire",
                "delivered=" + std::to_string(delivered_total) +
                    " expected=" + std::to_string(expected_wire) +
                    " (offload=" + std::to_string(offload_total) +
                    " forwards=" + std::to_string(forwards_total) +
                    " split_drops=" + std::to_string(split_drops) + ")",
                now);
  }

  return log_.total();
}

ReorderProbeCounters ConformanceHarness::reorder_counters() const {
  ReorderProbeCounters sum;
  for (const auto& p : reorder_probes_) {
    const ReorderProbeCounters& c = p->counters();
    sum.reserves += c.reserves;
    sum.writebacks += c.writebacks;
    sum.alias_writebacks += c.alias_writebacks;
    sum.best_effort += c.best_effort;
    sum.resolved_in_order += c.resolved_in_order;
    sum.resolved_drop += c.resolved_drop;
    sum.resolved_timeout += c.resolved_timeout;
  }
  return sum;
}

}  // namespace albatross::check
