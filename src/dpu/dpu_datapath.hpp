// DPU datapath model — the middle tier of the Gryphon-style hierarchical
// co-offload (PAPERS.md §2.2): warm flows that overflow the FPGA's 64K
// BRAM session table are served on DPU cores instead of falling all the
// way back to the host CPU. The per-packet cost is a *software* LPM walk
// plus an exact-match cuckoo lookup — the penalty quantified by
// bench_micro_datastructures (LpmTrie vs LpmDir24), scaled for the
// wimpier DPU cores — so the model's arithmetic is anchored to measured
// numbers rather than invented ones.
//
// The datapath is deliberately lossless: a DPU-resident session is
// always served (per-core FIFO queueing delays it, never drops it), so
// tier *placement* only ever changes latency, never packet outcomes.
// tests/test_dpu_diff.cpp leans on exactly this property.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "tables/cuckoo_table.hpp"

namespace albatross {

struct DpuDatapathConfig {
  /// DRAM-backed session slots — bounded by DPU memory, not BRAM, so
  /// the default is 4x the FPGA table. The tier sweeps in
  /// tests/test_dpu_diff.cpp assume this is never the binding limit.
  std::size_t capacity = 262'144;
  /// Embedded ARM datapath cores. Flow-affine dispatch (crc32c of the
  /// 5-tuple) keeps per-flow packet order trivially.
  std::uint16_t cores = 8;
  /// Per-packet software LPM walk. bench_micro_datastructures measures
  /// the trie at ~7-8x the DIR-24-8 cost on a host core; scaled ~3x for
  /// the DPU's lower clock/IPC this lands at ~1.8us.
  NanoTime lpm_lookup = nanos_from_double(1'800.0);
  /// Exact-match session lookup + counter update (cuckoo find path from
  /// the same bench, DPU-scaled).
  NanoTime session_update = nanos_from_double(450.0);
  /// Fixed per-packet overhead (descriptor handling, doorbells).
  NanoTime fixed_overhead = nanos_from_double(250.0);
  /// Idle eviction horizon for DPU-resident sessions (DRAM is cheap, so
  /// this is looser than the FPGA's aging but still bounded).
  NanoTime idle_timeout = 5 * kSecond;
};

struct DpuSession {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  NanoTime installed = NanoTime{0};
  NanoTime last_seen = NanoTime{0};
};

struct DpuDatapathStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t installs = 0;
  std::uint64_t install_rejected_full = 0;
  std::uint64_t removes = 0;
  std::uint64_t aged_out = 0;
  std::uint64_t flushed = 0;       ///< chaos: tier-table flush victims
  std::uint64_t core_stalls = 0;   ///< chaos: injected core stalls
};

class DpuDatapath {
 public:
  explicit DpuDatapath(DpuDatapathConfig cfg = {});

  /// Per-packet serve attempt. On hit the session counters update and
  /// the packet is queued on its flow-affine core: the returned latency
  /// (measured from `ready`, the time the packet leaves the NIC parse +
  /// GOP stages) covers any FIFO wait plus the software lookup cost.
  /// nullopt = session not resident (slow path to CPU or FPGA).
  std::optional<NanoTime> serve(const FiveTuple& tuple, std::size_t bytes,
                                NanoTime ready);

  /// Installs a session (tier controller decision). False when the DRAM
  /// table rejects the insert (kick chain + stash exhausted).
  bool install(const FiveTuple& tuple, NanoTime now);
  bool remove(const FiveTuple& tuple);
  [[nodiscard]] bool resident(const FiveTuple& tuple) const;

  /// Ages idle sessions; returns the number reclaimed.
  std::size_t age(NanoTime now);

  /// Chaos hook: wedges one datapath core until `until` — queued packets
  /// wait (latency-only fault; nothing is dropped).
  void stall_core(std::uint16_t core, NanoTime until);
  /// Chaos hook: drops every DPU-resident session (e.g. a datapath
  /// restart); flows fall back to the CPU until re-admitted.
  std::size_t flush(NanoTime now);

  /// True when `core_for(tuple)`'s FIFO is drained at `at` — the
  /// promotion-safety predicate: moving a flow to the faster FPGA tier
  /// is order-safe only once its DPU queue is empty.
  [[nodiscard]] bool core_idle_at(const FiveTuple& tuple, NanoTime at) const;

  [[nodiscard]] std::uint16_t core_for(const FiveTuple& tuple) const;
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const DpuDatapathStats& stats() const { return stats_; }
  [[nodiscard]] const DpuDatapathConfig& config() const { return cfg_; }
  /// Total per-packet software cost (LPM + session + overhead).
  [[nodiscard]] NanoTime packet_cost() const {
    return cfg_.lpm_lookup + cfg_.session_update + cfg_.fixed_overhead;
  }

 private:
  DpuDatapathConfig cfg_;
  CuckooTable<FiveTuple, DpuSession> table_;
  std::vector<NanoTime> busy_until_;  ///< per-core FIFO serialization
  DpuDatapathStats stats_;
};

}  // namespace albatross
