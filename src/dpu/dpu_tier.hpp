// DpuTier: the hierarchical co-offload façade the NIC ingress consults —
// FPGA session table first (elephants), DPU datapath second (warm
// flows), CPU pods as the miss path (mice). Owns the TierController
// that moves flows between the three and the DpuDatapath that serves
// the middle tier; the FPGA tier is the pod's existing SessionOffload,
// borrowed by reference so installs/aging stay visible to everything
// that already knows about it (housekeeping, ledger checks, benches).
//
// Every serve() outcome is one of {FPGA-served, DPU-served, miss}; the
// first two early-return at NIC ingress stage 3 exactly like today's
// session offload, so tier placement can only change *latency*, never
// drops or ordering — the invariant tests/test_dpu_diff.cpp enforces.
#pragma once

#include <cstdint>
#include <optional>

#include "dpu/dpu_datapath.hpp"
#include "dpu/tier_controller.hpp"
#include "nic/session_offload.hpp"

namespace albatross {

struct DpuTierConfig {
  TierControllerConfig controller;
  DpuDatapathConfig datapath;
  /// FPGA tier geometry, used only when the pod has no session offload
  /// enabled yet (enable_dpu_tier then enables it with this config).
  SessionOffloadConfig fpga;
};

/// One tier-served packet: which tier handled it and the processing
/// latency measured from the packet's post-parse/GOP ready time.
struct TierServe {
  NanoTime latency = NanoTime{0};
  TierLevel tier = TierLevel::kFpga;
};

struct DpuTierStats {
  std::uint64_t fpga_hits = 0;
  std::uint64_t dpu_hits = 0;
  std::uint64_t misses = 0;           ///< fell through to the CPU path
  std::uint64_t forced_promotes = 0;  ///< fuzz/chaos ops that took effect
  std::uint64_t forced_demotes = 0;
  std::uint64_t table_flushes = 0;    ///< chaos: DPU table wipes
};

class DpuTier {
 public:
  DpuTier(DpuTierConfig cfg, SessionOffload& fpga);

  /// Ingress stage-3 fast path. `now` is the packet's arrival (rate
  /// bookkeeping), `ready` the time it clears parse + GOP (latency
  /// base). nullopt = no tier holds the flow; continue to PLB/RSS
  /// dispatch and the CPU pod.
  std::optional<TierServe> serve(const FiveTuple& tuple, std::size_t bytes,
                                 NanoTime now, NanoTime ready);

  /// Egress observation: a CPU forward of `tuple` left the host. Feeds
  /// the controller's handover gate and mice filter, and — when this
  /// forward clears the flow's last in-flight CPU packet — admits the
  /// flow to the DPU tier on the spot (the same point the legacy
  /// offload installs at, so admission latency matches it). Order-safe:
  /// the forwarded packet is already at the wire, and any later arrival
  /// pays at least the DPU path latency on top.
  void observe_forward(const FiveTuple& tuple, NanoTime now);
  /// Host-drop observation (ring overflow / service drop): releases the
  /// flow's in-flight handover slot — a dropped packet can never be
  /// overtaken at the wire, and without the credit one drop would wedge
  /// the flow on the CPU path forever.
  void observe_host_drop(const FiveTuple& tuple, NanoTime now);

  /// Housekeeping: ages DPU sessions and idle controller state. (The
  /// FPGA table keeps its own aging via Platform::enable_housekeeping.)
  std::size_t age(NanoTime now);

  /// Fuzz/chaos ops: move a flow one tier up/down through the same
  /// safety gates the controller uses (in-flight handover, idle DPU
  /// core, FPGA capacity). Deterministic no-op (false) when unsafe.
  bool force_promote(const FiveTuple& tuple, NanoTime now);
  bool force_demote(const FiveTuple& tuple, NanoTime now);

  /// Chaos hooks: wedge one DPU core (latency-only) / wipe the DPU
  /// session table (flows fall back to the CPU until re-admitted).
  void stall_core(std::uint16_t core, NanoTime until);
  std::size_t flush_tier_table(NanoTime now);

  [[nodiscard]] const DpuTierStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t tier_hits() const {
    return stats_.fpga_hits + stats_.dpu_hits;
  }
  TierController& controller() { return controller_; }
  DpuDatapath& datapath() { return datapath_; }
  SessionOffload& fpga() { return *fpga_; }
  [[nodiscard]] const DpuTierConfig& config() const { return cfg_; }

 private:
  /// DPU -> FPGA move, evicting the coldest pinned flow on overflow.
  bool promote_to_fpga(const FiveTuple& tuple, TierFlowState& st,
                       NanoTime now);

  DpuTierConfig cfg_;
  SessionOffload* fpga_;
  DpuDatapath datapath_;
  TierController controller_;
  DpuTierStats stats_;
};

}  // namespace albatross
