#include "dpu/dpu_tier.hpp"

namespace albatross {

DpuTier::DpuTier(DpuTierConfig cfg, SessionOffload& fpga)
    : cfg_(cfg), fpga_(&fpga), datapath_(cfg.datapath),
      controller_(cfg.controller) {}

bool DpuTier::promote_to_fpga(const FiveTuple& tuple, TierFlowState& st,
                              NanoTime now) {
  if (!fpga_->install(tuple, 0, now)) {
    // BRAM full: evict the coldest pinned flow down to the DPU so the
    // hotter one can take its slot (one extra migration token).
    const auto victim = controller_.coldest_fpga();
    if (!victim.has_value() || !controller_.take_migration_budget(now)) {
      return false;
    }
    fpga_->remove(*victim);
    TierFlowState* vst = controller_.find(*victim);
    if (vst != nullptr) {
      controller_.moved(*vst,
                        datapath_.install(*victim, now) ? TierLevel::kDpu
                                                        : TierLevel::kCpu,
                        now);
    }
    controller_.count_cold_eviction();
    if (!fpga_->install(tuple, 0, now)) return false;
  }
  datapath_.remove(tuple);
  controller_.moved(st, TierLevel::kFpga, now);
  return true;
}

std::optional<TierServe> DpuTier::serve(const FiveTuple& tuple,
                                        std::size_t bytes, NanoTime now,
                                        NanoTime ready) {
  TierFlowState* st = controller_.observe_arrival(tuple, now);

  // FPGA first: the elephants' tier, and the cheapest lookup.
  if (const auto fpga_ns = fpga_->fast_path(tuple, bytes, now)) {
    ++stats_.fpga_hits;
    if (st != nullptr) {
      if (st->tier != TierLevel::kFpga) {
        // Resident but not tracked as such (legacy install / rebuilt
        // controller state): adopt the placement.
        st->tier = TierLevel::kFpga;
        st->tier_since = now;
      } else if (st->ewma_pps < controller_.config().demote_pps) {
        // Demotion to the slower tier is always order-safe (later
        // packets only get later wire times).
        if (now - st->tier_since < controller_.config().dwell_min) {
          controller_.count_dwell_suppressed();
        } else if (controller_.take_migration_budget(now)) {
          fpga_->remove(tuple);
          controller_.moved(*st,
                            datapath_.install(tuple, now) ? TierLevel::kDpu
                                                          : TierLevel::kCpu,
                            now);
        }
      }
    }
    return TierServe{*fpga_ns, TierLevel::kFpga};
  }

  if (st != nullptr && st->tier == TierLevel::kFpga) {
    // FPGA aged the session out behind our back; fall to the CPU tier
    // and let the flow re-earn DPU admission.
    controller_.moved(*st, TierLevel::kCpu, now);
  }

  // DPU second. Promotion to the *faster* FPGA tier happens before the
  // serve and only with the flow's DPU queue drained: every prior
  // DPU-served packet is then already at (or past) the deparser, so the
  // FPGA-served packet cannot overtake it on the wire.
  if (st != nullptr && datapath_.resident(tuple)) {
    if (controller_.promote_ready(*st, now) &&
        datapath_.core_idle_at(tuple, ready) &&
        controller_.take_migration_budget(now) &&
        promote_to_fpga(tuple, *st, now)) {
      const auto fpga_ns = fpga_->fast_path(tuple, bytes, now);
      ++stats_.fpga_hits;
      return TierServe{fpga_ns.value_or(fpga_->config().fpga_process_ns),
                       TierLevel::kFpga};
    }
    if (st->ewma_pps >= controller_.config().promote_pps &&
        now - st->tier_since < controller_.config().dwell_min) {
      controller_.count_dwell_suppressed();
    }
  }
  if (const auto dpu_ns = datapath_.serve(tuple, bytes, ready)) {
    ++stats_.dpu_hits;
    if (st != nullptr && st->tier != TierLevel::kDpu) {
      st->tier = TierLevel::kDpu;
      st->tier_since = now;
    }
    return TierServe{*dpu_ns, TierLevel::kDpu};
  }

  // Miss. CPU admission (the handover): only a flow past the mice
  // filter with zero CPU packets in flight may enter the DPU tier —
  // and it does so serving *this* packet, so admission is exercised
  // mid-stream, not just between bursts.
  if (st != nullptr) {
    if (st->tier == TierLevel::kDpu) {
      // DPU table lost the session (aging/flush); re-earn admission.
      controller_.moved(*st, TierLevel::kCpu, now);
    }
    if (controller_.admit_ready(*st) && controller_.take_admit_budget(now) &&
        datapath_.install(tuple, now)) {
      controller_.moved(*st, TierLevel::kDpu, now);
      const auto dpu_ns = datapath_.serve(tuple, bytes, ready);
      if (dpu_ns.has_value()) {
        ++stats_.dpu_hits;
        return TierServe{*dpu_ns, TierLevel::kDpu};
      }
    }
    controller_.on_cpu_miss(*st, now);
  }
  ++stats_.misses;
  return std::nullopt;
}

void DpuTier::observe_forward(const FiveTuple& tuple, NanoTime now) {
  controller_.on_forward(tuple, now);
  // Egress-time admission: if this forward cleared the flow's last
  // in-flight CPU packet and the mice filter is satisfied, install now
  // so the *next* arrival already hits the DPU. Waiting for the next
  // miss instead (the serve() fallback) costs one extra CPU round-trip
  // per flow — at scale, that halves the tier's ramp rate.
  TierFlowState* st = controller_.find(tuple);
  if (st == nullptr) return;
  if (controller_.admit_ready(*st) && controller_.take_admit_budget(now) &&
      datapath_.install(tuple, now)) {
    controller_.moved(*st, TierLevel::kDpu, now);
  }
}

void DpuTier::observe_host_drop(const FiveTuple& tuple, NanoTime now) {
  controller_.on_host_drop(tuple, now);
}

std::size_t DpuTier::age(NanoTime now) {
  std::size_t reclaimed = datapath_.age(now);
  reclaimed += controller_.age(now, datapath_.config().idle_timeout);
  return reclaimed;
}

bool DpuTier::force_promote(const FiveTuple& tuple, NanoTime now) {
  TierFlowState* st = controller_.find(tuple);
  if (st == nullptr) return false;
  bool ok = false;
  if (st->tier == TierLevel::kCpu) {
    // Forced admission still honours the in-flight handover gate —
    // violating it would let the op change packet outcomes.
    ok = st->cpu_inflight == 0 && datapath_.install(tuple, now);
    if (ok) controller_.moved(*st, TierLevel::kDpu, now);
  } else if (st->tier == TierLevel::kDpu) {
    ok = datapath_.core_idle_at(tuple, now) && promote_to_fpga(tuple, *st, now);
  }
  if (ok) ++stats_.forced_promotes;
  return ok;
}

bool DpuTier::force_demote(const FiveTuple& tuple, NanoTime now) {
  TierFlowState* st = controller_.find(tuple);
  if (st == nullptr) return false;
  bool ok = false;
  if (st->tier == TierLevel::kFpga) {
    fpga_->remove(tuple);
    controller_.moved(*st,
                      datapath_.install(tuple, now) ? TierLevel::kDpu
                                                    : TierLevel::kCpu,
                      now);
    ok = true;
  } else if (st->tier == TierLevel::kDpu) {
    // Back to the CPU only once the flow's DPU queue drained: CPU-path
    // latency floors above the deparser residue, so order holds.
    if (datapath_.core_idle_at(tuple, now)) {
      datapath_.remove(tuple);
      controller_.moved(*st, TierLevel::kCpu, now);
      ok = true;
    }
  }
  if (ok) ++stats_.forced_demotes;
  return ok;
}

void DpuTier::stall_core(std::uint16_t core, NanoTime until) {
  datapath_.stall_core(core, until);
}

std::size_t DpuTier::flush_tier_table(NanoTime now) {
  const std::size_t victims = datapath_.flush(now);
  controller_.retier_all(TierLevel::kDpu, now);
  ++stats_.table_flushes;
  return victims;
}

}  // namespace albatross
