// Tier placement controller for the hierarchical co-offload (Gryphon,
// PAPERS.md): per-flow rate EWMAs decide which tier serves a flow —
// elephants pinned in the FPGA session table, warm flows on the DPU
// datapath, mice left on the CPU pods. Three disciplines keep placement
// stable and *outcome-invariant*:
//
//   hysteresis   promote (EWMA >= promote_pps) and demote (< demote_pps)
//                thresholds are separated, and every resident flow must
//                dwell `dwell_min` in its tier before moving again — an
//                oscillating rate straddling one threshold cannot flap.
//   budget       migrations (admissions, promotions, demotions,
//                evictions) draw from a per-epoch token budget, bounding
//                table-update bandwidth per slice the way a real
//                control channel would.
//   handover     a CPU flow is admitted to the DPU only when it has no
//                packet still in flight on the CPU path (counted miss ->
//                forward), so a freshly tiered flow can never overtake
//                its own slower-path packets at the wire.
//
// The controller is pure bookkeeping: DpuTier executes the moves it
// decides against the FPGA/DPU tables. Flow state lives in the repo's
// CuckooTable, so scans are deterministic for a given insert history.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "tables/cuckoo_table.hpp"

namespace albatross {

/// Which tier currently serves a flow. kCpu is the default: the flow is
/// unknown to (or explicitly left on) the host slow path.
enum class TierLevel : std::uint8_t { kCpu, kDpu, kFpga };

struct TierControllerConfig {
  double promote_pps = 50'000.0;  ///< DPU -> FPGA EWMA threshold
  double demote_pps = 5'000.0;    ///< FPGA -> DPU EWMA threshold
  double ewma_alpha = 0.2;        ///< per-packet rate EWMA smoothing
  /// Minimum residency in a tier before the next migration; the flap
  /// bound: an oscillating flow moves at most once per dwell window.
  NanoTime dwell_min = 5 * kMillisecond;
  /// CPU forwards observed before a flow is DPU-eligible (mice filter).
  std::uint32_t admit_forwards = 2;
  /// Per-epoch token budgets, one per control channel. Admissions
  /// (CPU -> DPU) ride the host control channel; promotions/demotions/
  /// evictions (FPGA <-> DPU) ride the intra-NIC channel. Keeping the
  /// pools separate is what makes FPGA-capacity sweeps outcome-exact:
  /// capacity only changes intra-NIC traffic, which can never starve
  /// the admission channel and so never changes which flows leave the
  /// CPU path (tests/test_dpu_diff.cpp FpgaCapacitySweep).
  std::uint32_t admit_budget = 64;
  std::uint32_t migration_budget = 64;
  NanoTime migration_epoch = 10 * kMillisecond;
  /// Self-heal: a CPU in-flight count stuck non-zero (the packet was
  /// dropped after the miss, so no forward ever lands) resets after this
  /// long without new misses.
  NanoTime inflight_reset = 5 * kMillisecond;
  /// Flow-state table capacity; when full, new flows simply stay on the
  /// CPU untracked (graceful degradation, never an error).
  std::size_t max_tracked_flows = 262'144;
};

struct TierFlowState {
  TierLevel tier = TierLevel::kCpu;
  double ewma_pps = 0.0;
  NanoTime last_seen = NanoTime{0};
  NanoTime tier_since = NanoTime{0};
  NanoTime last_miss = NanoTime{0};
  std::uint32_t forwards = 0;      ///< CPU forwards observed at egress
  std::uint32_t cpu_inflight = 0;  ///< misses not yet matched by forwards
};

struct TierControllerStats {
  std::uint64_t admissions = 0;        ///< CPU -> DPU installs
  std::uint64_t promotions = 0;        ///< DPU -> FPGA
  std::uint64_t demotions = 0;         ///< FPGA -> DPU (threshold)
  std::uint64_t evictions_cold = 0;    ///< FPGA overflow: coldest demoted
  std::uint64_t removals = 0;          ///< DPU -> CPU (aging/flush/force)
  std::uint64_t budget_exhausted = 0;  ///< migration deferred: no tokens
  std::uint64_t dwell_suppressed = 0;  ///< migration blocked by dwell_min
  std::uint64_t inflight_resets = 0;   ///< self-heal events
  std::uint64_t drop_credits = 0;      ///< in-flight releases on host drops
};

class TierController {
 public:
  explicit TierController(TierControllerConfig cfg = {});

  /// Per-arrival bookkeeping: updates the flow's EWMA/last_seen (the
  /// update is placement-independent so FPGA-capacity sweeps see the
  /// same rate estimates). Creates state for unknown flows while the
  /// table has room; returns null when untracked.
  TierFlowState* observe_arrival(const FiveTuple& tuple, NanoTime now);

  /// The arrival missed every tier and went to the CPU path.
  void on_cpu_miss(TierFlowState& st, NanoTime now);
  /// Egress saw a CPU forward of this flow (the handover gate input).
  void on_forward(const FiveTuple& tuple, NanoTime now);
  /// The host dropped one of this flow's packets (ring overflow or
  /// service drop). A dropped packet can never be overtaken at the
  /// wire, so crediting the in-flight gate is order-safe — and without
  /// the credit a single drop would wedge the flow on the CPU forever
  /// (its forward never lands to balance the miss).
  void on_host_drop(const FiveTuple& tuple, NanoTime now);

  /// Decision predicates; all pure w.r.t. the flow/budget state.
  [[nodiscard]] bool admit_ready(const TierFlowState& st) const;
  [[nodiscard]] bool promote_ready(const TierFlowState& st,
                                   NanoTime now) const;
  [[nodiscard]] bool demote_ready(const TierFlowState& st,
                                  NanoTime now) const;

  /// Consume one token from the named channel; both refill at epoch
  /// boundaries. False (and counted) when the epoch's budget is spent.
  bool take_admit_budget(NanoTime now);
  bool take_migration_budget(NanoTime now);

  /// Records an executed move (updates tier/tier_since + stat counters).
  void moved(TierFlowState& st, TierLevel to, NanoTime now);
  void count_dwell_suppressed() { ++stats_.dwell_suppressed; }
  void count_cold_eviction() { ++stats_.evictions_cold; }

  /// Coldest FPGA-resident flow (min last_seen; deterministic scan
  /// order) — the overflow-eviction victim. Nullopt when none resident.
  [[nodiscard]] std::optional<FiveTuple> coldest_fpga();

  /// Drops the flow back to untracked CPU state (aging/flush).
  void forget(const FiveTuple& tuple);
  /// Erases idle CPU-resident state (tiered flows keep theirs — their
  /// session tables age them first and serve() re-tags on miss).
  std::size_t age(NanoTime now, NanoTime idle_timeout);
  /// Re-tags every flow in `from` as CPU-resident (tier-table flush).
  std::size_t retier_all(TierLevel from, NanoTime now);

  [[nodiscard]] TierFlowState* find(const FiveTuple& tuple) {
    return flows_.find_mut(tuple);
  }
  [[nodiscard]] std::size_t tracked() const { return flows_.size(); }
  [[nodiscard]] std::uint32_t admit_budget_left() const {
    return admit_left_;
  }
  [[nodiscard]] std::uint32_t migration_budget_left() const {
    return migration_left_;
  }
  [[nodiscard]] const TierControllerStats& stats() const { return stats_; }
  [[nodiscard]] const TierControllerConfig& config() const { return cfg_; }

 private:
  void refill_epoch(NanoTime now);

  TierControllerConfig cfg_;
  CuckooTable<FiveTuple, TierFlowState> flows_;
  TierControllerStats stats_;
  std::uint32_t admit_left_;
  std::uint32_t migration_left_;
  std::int64_t budget_epoch_ = -1;
};

}  // namespace albatross
