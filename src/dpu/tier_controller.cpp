#include "dpu/tier_controller.hpp"

namespace albatross {

TierController::TierController(TierControllerConfig cfg)
    : cfg_(cfg),
      flows_(cfg.max_tracked_flows),
      admit_left_(cfg.admit_budget),
      migration_left_(cfg.migration_budget) {}

TierFlowState* TierController::observe_arrival(const FiveTuple& tuple,
                                               NanoTime now) {
  TierFlowState* st = flows_.find_mut(tuple);
  if (st == nullptr) {
    if (flows_.size() >= cfg_.max_tracked_flows) return nullptr;
    TierFlowState fresh;
    fresh.last_seen = now;
    fresh.tier_since = now;
    if (!flows_.insert(tuple, fresh)) return nullptr;
    return flows_.find_mut(tuple);
  }
  // Placement-independent rate estimate: only arrival gaps feed the
  // EWMA, so an FPGA-capacity sweep sees identical estimates for every
  // flow regardless of which tier happened to serve it.
  if (now > st->last_seen) {
    const double gap_s = nanos_to_seconds(now - st->last_seen);
    const double inst_pps = 1.0 / gap_s;
    st->ewma_pps =
        cfg_.ewma_alpha * inst_pps + (1.0 - cfg_.ewma_alpha) * st->ewma_pps;
  }
  st->last_seen = now;
  return st;
}

void TierController::on_cpu_miss(TierFlowState& st, NanoTime now) {
  if (st.cpu_inflight > 0 && now - st.last_miss > cfg_.inflight_reset) {
    // The outstanding packets were dropped downstream (ring/service/
    // reorder) so their forwards never land; without this reset the
    // handover gate would wedge the flow on the CPU forever.
    st.cpu_inflight = 0;
    ++stats_.inflight_resets;
  }
  ++st.cpu_inflight;
  st.last_miss = now;
}

void TierController::on_forward(const FiveTuple& tuple, NanoTime now) {
  TierFlowState* st = flows_.find_mut(tuple);
  if (st == nullptr) return;
  if (st->cpu_inflight > 0) --st->cpu_inflight;
  ++st->forwards;
  (void)now;
}

void TierController::on_host_drop(const FiveTuple& tuple, NanoTime now) {
  TierFlowState* st = flows_.find_mut(tuple);
  if (st == nullptr || st->cpu_inflight == 0) return;
  --st->cpu_inflight;
  ++stats_.drop_credits;
  (void)now;
}

bool TierController::admit_ready(const TierFlowState& st) const {
  // The inflight==0 gate is the order-safety proof: every prior packet
  // of the flow has already been forwarded at egress, and the DPU path's
  // minimum latency exceeds the wire residue of a forwarded packet, so
  // the first DPU-served packet cannot overtake any CPU-served one.
  return st.tier == TierLevel::kCpu && st.forwards >= cfg_.admit_forwards &&
         st.cpu_inflight == 0;
}

bool TierController::promote_ready(const TierFlowState& st,
                                   NanoTime now) const {
  return st.tier == TierLevel::kDpu && st.ewma_pps >= cfg_.promote_pps &&
         now - st.tier_since >= cfg_.dwell_min;
}

bool TierController::demote_ready(const TierFlowState& st,
                                  NanoTime now) const {
  return st.tier == TierLevel::kFpga && st.ewma_pps < cfg_.demote_pps &&
         now - st.tier_since >= cfg_.dwell_min;
}

void TierController::refill_epoch(NanoTime now) {
  const std::int64_t epoch = now.count() / cfg_.migration_epoch.count();
  if (epoch != budget_epoch_) {
    budget_epoch_ = epoch;
    admit_left_ = cfg_.admit_budget;
    migration_left_ = cfg_.migration_budget;
  }
}

bool TierController::take_admit_budget(NanoTime now) {
  refill_epoch(now);
  if (admit_left_ == 0) {
    ++stats_.budget_exhausted;
    return false;
  }
  --admit_left_;
  return true;
}

bool TierController::take_migration_budget(NanoTime now) {
  refill_epoch(now);
  if (migration_left_ == 0) {
    ++stats_.budget_exhausted;
    return false;
  }
  --migration_left_;
  return true;
}

void TierController::moved(TierFlowState& st, TierLevel to, NanoTime now) {
  const TierLevel from = st.tier;
  st.tier = to;
  st.tier_since = now;
  if (from == TierLevel::kCpu && to == TierLevel::kDpu) {
    ++stats_.admissions;
  } else if (from == TierLevel::kDpu && to == TierLevel::kFpga) {
    ++stats_.promotions;
  } else if (from == TierLevel::kFpga && to == TierLevel::kDpu) {
    ++stats_.demotions;
  } else if (to == TierLevel::kCpu) {
    ++stats_.removals;
    // Back to the slow path: re-earn admission and restart the handover
    // gate from a clean slate.
    st.forwards = 0;
    st.cpu_inflight = 0;
  }
}

std::optional<FiveTuple> TierController::coldest_fpga() {
  std::optional<FiveTuple> victim;
  NanoTime coldest = NanoTime{0};
  flows_.for_each_erase_if(
      [&](const FiveTuple& tuple, const TierFlowState& st) {
        if (st.tier == TierLevel::kFpga &&
            (!victim.has_value() || st.last_seen < coldest)) {
          victim = tuple;
          coldest = st.last_seen;
        }
        return true;  // pure scan, nothing erased
      });
  return victim;
}

void TierController::forget(const FiveTuple& tuple) { flows_.erase(tuple); }

std::size_t TierController::age(NanoTime now, NanoTime idle_timeout) {
  std::size_t reclaimed = 0;
  flows_.for_each_erase_if([&](const FiveTuple&, const TierFlowState& st) {
    if (st.tier != TierLevel::kCpu || now - st.last_seen <= idle_timeout) {
      return true;
    }
    ++reclaimed;
    return false;
  });
  return reclaimed;
}

std::size_t TierController::retier_all(TierLevel from, NanoTime now) {
  std::size_t moved_flows = 0;
  flows_.for_each_erase_if([&](const FiveTuple&, TierFlowState& st) {
    if (st.tier == from) {
      st.tier = TierLevel::kCpu;
      st.tier_since = now;
      st.forwards = 0;
      st.cpu_inflight = 0;
      ++stats_.removals;
      ++moved_flows;
    }
    return true;
  });
  return moved_flows;
}

}  // namespace albatross
