#include "dpu/dpu_datapath.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace albatross {

DpuDatapath::DpuDatapath(DpuDatapathConfig cfg)
    : cfg_(cfg),
      table_(cfg.capacity),
      busy_until_(std::max<std::uint16_t>(1, cfg.cores), NanoTime{0}) {}

std::uint16_t DpuDatapath::core_for(const FiveTuple& tuple) const {
  return static_cast<std::uint16_t>(crc32c(tuple) % busy_until_.size());
}

bool DpuDatapath::core_idle_at(const FiveTuple& tuple, NanoTime at) const {
  return busy_until_[core_for(tuple)] <= at;
}

std::optional<NanoTime> DpuDatapath::serve(const FiveTuple& tuple,
                                           std::size_t bytes, NanoTime ready) {
  DpuSession* s = table_.find_mut(tuple);
  if (s == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++s->packets;
  s->bytes += bytes;
  s->last_seen = ready;
  ++stats_.hits;

  // Flow-affine FIFO: the packet starts when both it and its core are
  // ready; the core is then busy for the software lookup cost. Same
  // busy-until discipline DmaChannel uses, so per-flow order holds by
  // construction (same core, non-decreasing ready times).
  const std::uint16_t core = core_for(tuple);
  const NanoTime start = std::max(ready, busy_until_[core]);
  const NanoTime done = start + packet_cost();
  busy_until_[core] = done;
  return done - ready;
}

bool DpuDatapath::install(const FiveTuple& tuple, NanoTime now) {
  if (table_.size() >= cfg_.capacity) {
    ++stats_.install_rejected_full;
    return false;
  }
  DpuSession s;
  s.installed = now;
  s.last_seen = now;
  if (!table_.insert(tuple, s)) {
    ++stats_.install_rejected_full;
    return false;
  }
  ++stats_.installs;
  return true;
}

bool DpuDatapath::remove(const FiveTuple& tuple) {
  if (!table_.erase(tuple)) return false;
  ++stats_.removes;
  return true;
}

bool DpuDatapath::resident(const FiveTuple& tuple) const {
  return table_.find(tuple).has_value();
}

std::size_t DpuDatapath::age(NanoTime now) {
  std::size_t reclaimed = 0;
  table_.for_each_erase_if([&](const FiveTuple&, const DpuSession& s) {
    if (now - s.last_seen <= cfg_.idle_timeout) return true;
    ++reclaimed;
    return false;
  });
  stats_.aged_out += reclaimed;
  return reclaimed;
}

void DpuDatapath::stall_core(std::uint16_t core, NanoTime until) {
  const std::size_t c = core % busy_until_.size();
  busy_until_[c] = std::max(busy_until_[c], until);
  ++stats_.core_stalls;
}

std::size_t DpuDatapath::flush(NanoTime now) {
  (void)now;
  std::size_t victims = 0;
  table_.for_each_erase_if([&](const FiveTuple&, const DpuSession&) {
    ++victims;
    return false;
  });
  stats_.flushed += victims;
  return victims;
}

}  // namespace albatross
