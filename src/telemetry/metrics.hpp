// Metrics registry with Prometheus-style text exposition. Production
// gateway fleets live and die by their metrics (the paper's Figs. 10-12
// are straight off such dashboards); the library exposes every counter
// the NIC pipeline, pods and reorder engines maintain through one
// registry so operators (and the bundled CLI) can scrape a consistent
// snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace albatross {

/// A metric label set, e.g. {{"pod","0"},{"queue","3"}}.
using Labels = std::map<std::string, std::string>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One exported sample (flattened; histograms expand to quantiles).
struct MetricSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Registers a pull-style metric: `fn` is sampled at collect() time,
  /// so the registry never holds stale copies of live counters.
  void register_counter(std::string name, Labels labels,
                        std::function<double()> fn, std::string help = "");
  void register_gauge(std::string name, Labels labels,
                      std::function<double()> fn, std::string help = "");
  /// Histogram source: sampled quantiles p50/p90/p99/p999 + count/mean.
  void register_histogram(std::string name, Labels labels,
                          std::function<const LogHistogram*()> fn,
                          std::string help = "");

  /// Collects every registered metric into flat samples.
  [[nodiscard]] std::vector<MetricSample> collect() const;

  /// Prometheus text exposition format (HELP/TYPE + samples).
  [[nodiscard]] std::string expose() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::string help;
    std::function<double()> scalar;
    std::function<const LogHistogram*()> histogram;
  };

  static std::string render_labels(const Labels& labels);

  std::vector<Entry> entries_;
};

class Platform;            // forward; defined in core/platform.hpp
class RecoveryController;  // forward; defined in chaos/recovery.hpp
class FaultInjector;       // forward; defined in chaos/injector.hpp

/// Wires a platform's live statistics into a registry: per-pod offered/
/// delivered/drops (including chaos blackholes), wire-latency quantiles,
/// reorder-engine counters, GOP verdicts and pkt_dir classification
/// counts.
void register_platform_metrics(MetricsRegistry& registry, Platform& platform);

/// Wires the chaos/recovery subsystem into a registry: incident
/// counters, packets lost, and the detect/blackhole/recovery latency
/// histograms (plus injector totals when given).
void register_chaos_metrics(MetricsRegistry& registry,
                            const RecoveryController& controller,
                            const FaultInjector* injector = nullptr);

namespace check {
class ConformanceHarness;  // forward; defined in check/probes.hpp
}  // namespace check

/// Wires a conformance harness into a registry: violation totals, probe
/// event counters (reserve/write-back/resolve breakdown) and meter
/// divergence counts. The harness must outlive the registry's scrapes.
void register_conformance_metrics(MetricsRegistry& registry,
                                  const check::ConformanceHarness& harness);

}  // namespace albatross
