#include "telemetry/metrics.hpp"

#include <sstream>

#include "chaos/recovery.hpp"
#include "check/probes.hpp"
#include "core/platform.hpp"

namespace albatross {

void MetricsRegistry::register_counter(std::string name, Labels labels,
                                       std::function<double()> fn,
                                       std::string help) {
  entries_.push_back(Entry{std::move(name), std::move(labels),
                           MetricKind::kCounter, std::move(help),
                           std::move(fn), nullptr});
}

void MetricsRegistry::register_gauge(std::string name, Labels labels,
                                     std::function<double()> fn,
                                     std::string help) {
  entries_.push_back(Entry{std::move(name), std::move(labels),
                           MetricKind::kGauge, std::move(help), std::move(fn),
                           nullptr});
}

void MetricsRegistry::register_histogram(
    std::string name, Labels labels,
    std::function<const LogHistogram*()> fn, std::string help) {
  entries_.push_back(Entry{std::move(name), std::move(labels),
                           MetricKind::kHistogram, std::move(help), nullptr,
                           std::move(fn)});
}

std::vector<MetricSample> MetricsRegistry::collect() const {
  std::vector<MetricSample> out;
  for (const auto& e : entries_) {
    if (e.kind == MetricKind::kHistogram) {
      const LogHistogram* h = e.histogram();
      if (h == nullptr) continue;
      const std::pair<const char*, double> quantiles[] = {
          {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
      for (const auto& [qname, q] : quantiles) {
        Labels l = e.labels;
        l["quantile"] = qname;
        out.push_back(MetricSample{e.name, std::move(l),
                                   static_cast<double>(h->quantile(q))});
      }
      out.push_back(MetricSample{e.name + "_count", e.labels,
                                 static_cast<double>(h->count())});
      out.push_back(MetricSample{e.name + "_mean", e.labels, h->mean()});
    } else {
      out.push_back(MetricSample{e.name, e.labels, e.scalar()});
    }
  }
  return out;
}

std::string MetricsRegistry::render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << v << '"';
  }
  os << '}';
  return os.str();
}

std::string MetricsRegistry::expose() const {
  std::ostringstream os;
  std::string last_name;
  for (const auto& e : entries_) {
    if (e.name != last_name) {
      if (!e.help.empty()) os << "# HELP " << e.name << ' ' << e.help << '\n';
      os << "# TYPE " << e.name << ' '
         << (e.kind == MetricKind::kCounter
                 ? "counter"
                 : e.kind == MetricKind::kGauge ? "gauge" : "summary")
         << '\n';
      last_name = e.name;
    }
    if (e.kind == MetricKind::kHistogram) {
      const LogHistogram* h = e.histogram();
      if (h == nullptr) continue;
      for (const auto& [qname, q] : std::initializer_list<
               std::pair<const char*, double>>{
               {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}}) {
        Labels l = e.labels;
        l["quantile"] = qname;
        os << e.name << render_labels(l) << ' '
           << static_cast<double>(h->quantile(q)) << '\n';
      }
      os << e.name << "_count" << render_labels(e.labels) << ' '
         << h->count() << '\n';
    } else {
      os << e.name << render_labels(e.labels) << ' ' << e.scalar() << '\n';
    }
  }
  return os.str();
}

void register_platform_metrics(MetricsRegistry& registry,
                               Platform& platform) {
  for (PodId pod = 0; pod < platform.pod_count(); ++pod) {
    const Labels l{{"pod", std::to_string(pod)}};
    registry.register_counter(
        "albatross_pod_offered_packets", l,
        [&platform, pod] {
          return static_cast<double>(platform.telemetry(pod).offered);
        },
        "packets offered to the pod at NIC ingress");
    registry.register_counter(
        "albatross_pod_delivered_packets", l,
        [&platform, pod] {
          return static_cast<double>(platform.telemetry(pod).delivered);
        },
        "packets delivered to the wire");
    registry.register_counter(
        "albatross_pod_disordered_packets", l, [&platform, pod] {
          return static_cast<double>(
              platform.telemetry(pod).delivered_disordered);
        });
    registry.register_counter(
        "albatross_pod_rate_limited_packets", l, [&platform, pod] {
          return static_cast<double>(
              platform.telemetry(pod).dropped_rate_limit);
        });
    registry.register_counter(
        "albatross_pod_blackholed_packets", l,
        [&platform, pod] {
          return static_cast<double>(platform.telemetry(pod).blackholed);
        },
        "packets lost to an offline pod (chaos faults)");
    registry.register_gauge(
        "albatross_pod_offline", l,
        [&platform, pod] { return platform.pod_offline(pod) ? 1.0 : 0.0; },
        "1 while the pod blackholes ingress");
    registry.register_histogram(
        "albatross_pod_wire_latency_ns", l,
        [&platform, pod] { return &platform.telemetry(pod).wire_latency; },
        "ingress-to-wire latency");
    registry.register_counter(
        "albatross_reorder_hol_timeouts", l, [&platform, pod] {
          return static_cast<double>(
              platform.nic().engine(pod).total_stats().timeout_releases);
        });
    registry.register_counter(
        "albatross_reorder_drop_releases", l, [&platform, pod] {
          return static_cast<double>(
              platform.nic().engine(pod).total_stats().drop_releases);
        });
    registry.register_counter(
        "albatross_pod_cpu_processed", l, [&platform, pod] {
          return static_cast<double>(platform.pod(pod).stats().processed);
        });
    if (platform.nic().dpu_tier_enabled(pod)) {
      registry.register_counter(
          "albatross_tier_fpga_hits", l,
          [&platform, pod] {
            return static_cast<double>(
                platform.nic().dpu_tier(pod).stats().fpga_hits);
          },
          "packets served by the FPGA tier of the co-offload hierarchy");
      registry.register_counter(
          "albatross_tier_dpu_hits", l,
          [&platform, pod] {
            return static_cast<double>(
                platform.nic().dpu_tier(pod).stats().dpu_hits);
          },
          "packets served on the DPU datapath cores");
      registry.register_counter(
          "albatross_tier_misses", l,
          [&platform, pod] {
            return static_cast<double>(
                platform.nic().dpu_tier(pod).stats().misses);
          },
          "packets that fell through the tiers to a CPU pod");
      registry.register_counter(
          "albatross_tier_admissions", l, [&platform, pod] {
            return static_cast<double>(
                platform.nic().dpu_tier(pod).controller().stats().admissions);
          });
      registry.register_counter(
          "albatross_tier_promotions", l, [&platform, pod] {
            return static_cast<double>(
                platform.nic().dpu_tier(pod).controller().stats().promotions);
          });
      registry.register_counter(
          "albatross_tier_demotions", l, [&platform, pod] {
            return static_cast<double>(
                platform.nic().dpu_tier(pod).controller().stats().demotions +
                platform.nic()
                    .dpu_tier(pod)
                    .controller()
                    .stats()
                    .evictions_cold);
          });
      registry.register_counter(
          "albatross_tier_migrations_deferred", l,
          [&platform, pod] {
            const auto& cs = platform.nic().dpu_tier(pod).controller().stats();
            return static_cast<double>(cs.budget_exhausted +
                                       cs.dwell_suppressed);
          },
          "tier moves deferred by the budget or dwell hysteresis");
    }
  }
  registry.register_counter(
      "albatross_gop_dropped_stage2", {}, [&platform] {
        return static_cast<double>(
            platform.nic().limiter().stats().dropped_stage2);
      });
  registry.register_counter(
      "albatross_gop_heavy_hitters_installed", {}, [&platform] {
        return static_cast<double>(
            platform.nic().limiter().stats().heavy_hitters_installed);
      });
  registry.register_gauge(
      "albatross_cache_l3_hit_rate", {},
      [&platform] { return platform.cache().l3_hit_rate(); },
      "modelled shared-L3 hit rate for the current working set");
}

void register_chaos_metrics(MetricsRegistry& registry,
                            const RecoveryController& controller,
                            const FaultInjector* injector) {
  registry.register_counter(
      "albatross_chaos_incidents_total", {},
      [&controller] {
        return static_cast<double>(controller.incidents_opened());
      },
      "incidents opened by the recovery controller (BFD detections)");
  registry.register_counter(
      "albatross_chaos_incidents_recovered", {}, [&controller] {
        return static_cast<double>(controller.incidents_recovered());
      });
  registry.register_counter(
      "albatross_chaos_redeploys_total", {},
      [&controller] { return static_cast<double>(controller.redeploys()); },
      "replacement pods deployed after crashes");
  registry.register_counter(
      "albatross_chaos_packets_lost_total", {}, [&controller] {
        return static_cast<double>(controller.packets_lost_total());
      });
  registry.register_histogram(
      "albatross_chaos_detect_latency_ns", {},
      [&controller] { return &controller.detect_latency_hist(); },
      "fault injection to BFD detection");
  registry.register_histogram(
      "albatross_chaos_blackhole_ns", {},
      [&controller] { return &controller.blackhole_hist(); },
      "fault injection to upstream route withdrawal");
  registry.register_histogram(
      "albatross_chaos_recovery_ns", {},
      [&controller] { return &controller.recovery_hist(); },
      "fault injection to traffic restored");
  if (injector != nullptr) {
    registry.register_counter(
        "albatross_chaos_faults_injected", {},
        [injector] { return static_cast<double>(injector->stats().applied); },
        "fault events applied by the injector");
  }
}

void register_conformance_metrics(MetricsRegistry& registry,
                                  const check::ConformanceHarness& harness) {
  registry.register_counter(
      "albatross_conformance_violations_total", {},
      [&harness] { return static_cast<double>(harness.log().total()); },
      "invariant violations detected by the conformance probes");
  registry.register_counter(
      "albatross_conformance_events_observed", {}, [&harness] {
        return static_cast<double>(harness.events_observed());
      });
  registry.register_counter(
      "albatross_conformance_reorder_reserves", {}, [&harness] {
        return static_cast<double>(harness.reorder_counters().reserves);
      });
  registry.register_counter(
      "albatross_conformance_reorder_resolved_in_order", {}, [&harness] {
        return static_cast<double>(
            harness.reorder_counters().resolved_in_order);
      });
  registry.register_counter(
      "albatross_conformance_reorder_resolved_timeout", {}, [&harness] {
        return static_cast<double>(
            harness.reorder_counters().resolved_timeout);
      });
  registry.register_counter(
      "albatross_conformance_reorder_best_effort", {}, [&harness] {
        return static_cast<double>(harness.reorder_counters().best_effort);
      });
  if (harness.meter() != nullptr) {
    registry.register_counter(
        "albatross_conformance_meter_checks", {},
        [&harness] { return static_cast<double>(harness.meter()->checks()); },
        "rate-limiter decisions cross-checked against the analytic oracle");
    registry.register_counter(
        "albatross_conformance_meter_divergences", {}, [&harness] {
          return static_cast<double>(harness.meter()->divergences());
        });
  }
}

}  // namespace albatross
