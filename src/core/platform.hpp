// albatross::Platform — the public façade a downstream user drives.
//
// It assembles one Albatross server: the FPGA NIC pipeline, containerized
// GW pods on the dual-NUMA CPU model, the shared forwarding tables and
// the telemetry needed to reproduce the paper's evaluation (end-to-end
// latency distribution, per-flow order verification, per-tenant
// delivery/drop accounting, per-core utilisation).
//
// Typical use (see examples/quickstart.cpp):
//   Platform platform(PlatformConfig{});
//   PodId pod = platform.create_pod(pod_cfg);
//   platform.attach_source(std::move(source), pod);
//   platform.run_for(2 * kSecond);
//   const PodTelemetry& t = platform.telemetry(pod);
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "gateway/gw_pod.hpp"
#include "nic/nic_pipeline.hpp"
#include "sim/cache_model.hpp"
#include "sim/event_loop.hpp"
#include "traffic/flow_gen.hpp"

namespace albatross {

struct PlatformConfig {
  NumaConfig numa;
  CacheConfig cache;
  NicPipelineConfig nic;
  std::uint32_t tenants = 1000;
  std::uint32_t routes = 100'000;
  std::uint16_t tables_data_cores = 96;  ///< conntrack partitions
  /// Cache-model working set. Scaled-down experiments populate far
  /// smaller tables than production, so the default pins the paper's
  /// regime (several GB -> 30-45% L3 hit rate). Set to 0 to derive the
  /// working set from the actual populated tables instead.
  std::uint64_t working_set_bytes = 4ull << 30;
  /// Source pump batching: one event-loop activation draws up to this
  /// many arrivals from a source (clamped to NicPipeline::kMaxIngressBurst)
  /// and runs them through ingress_burst with their exact per-packet
  /// arrival times. 1 = one event per packet (legacy). Batching never
  /// changes per-packet timestamps, only how many the host amortizes
  /// per activation — like NAPI polling vs per-packet interrupts.
  std::size_t ingress_batch = 32;
  /// Arrivals later than this past the batch head are left for the next
  /// pump activation, bounding how far ahead of the virtual clock a
  /// batch may reach.
  NanoTime ingress_batch_window = 4 * kMicrosecond;
};

/// Per-pod end-to-end measurements.
struct PodTelemetry {
  LogHistogram wire_latency;         ///< rx_time -> wire, ns
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_in_order = 0;
  std::uint64_t delivered_disordered = 0;
  std::uint64_t dropped_rate_limit = 0;
  std::uint64_t dropped_reorder_full = 0;
  std::uint64_t blackholed = 0;  ///< arrived while the pod was offline
  std::uint64_t flow_order_violations = 0;  ///< oracle per-flow check

  [[nodiscard]] double disorder_rate() const {
    return delivered ? static_cast<double>(delivered_disordered) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
};

/// Per-tenant delivery accounting (Fig. 13/14).
struct TenantCounters {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_rate_limit = 0;
  std::uint64_t dropped_other = 0;
};

class Platform {
 public:
  explicit Platform(PlatformConfig cfg = {});

  /// Creates a pod; its PLB engine geometry defaults from the spec
  /// (reorder queues proportional to cores).
  PodId create_pod(const GwPodConfig& pod_cfg,
                   std::uint16_t reorder_queues = 0,
                   const PktDirConfig& dir = {},
                   LbMode mode = LbMode::kPlb);

  /// Attaches a traffic source feeding `pod`; ownership transfers.
  void attach_source(std::unique_ptr<TrafficSource> src, PodId pod);

  /// Runs the simulation until virtual time `until`.
  void run_until(NanoTime until);
  void run_for(NanoTime duration) { run_until(loop_.now() + duration); }

  // --- accessors ---------------------------------------------------------
  EventLoop& loop() { return loop_; }
  NicPipeline& nic() { return nic_; }
  CacheModel& cache() { return cache_; }
  ServiceTables& tables() { return tables_; }
  GwPod& pod(PodId id) { return *pods_[id]; }
  [[nodiscard]] const PodTelemetry& telemetry(PodId id) const {
    return telemetry_[id];
  }
  [[nodiscard]] const TenantCounters& tenant(Vni vni) const;
  [[nodiscard]] std::size_t pod_count() const { return pods_.size(); }

  /// Enables the per-flow order oracle (tracks last seq per flow at the
  /// wire; costs memory, off by default for large runs).
  void enable_order_oracle(bool on) { order_oracle_ = on; }

  /// Resets telemetry counters/histograms (post-warmup).
  void reset_telemetry();

  /// Fault injection (chaos subsystem): an offline pod blackholes its
  /// ingress — packets are counted in PodTelemetry::blackholed and
  /// freed, exactly what upstream routers see between a pod dying and
  /// its routes being withdrawn.
  void set_pod_offline(PodId pod, bool offline);
  [[nodiscard]] bool pod_offline(PodId pod) const { return offline_[pod]; }

  /// Starts the ctrl-core housekeeping loop: periodic aging of per-core
  /// conntrack partitions and (when enabled) the FPGA session-offload
  /// table — the table-aging work Tofino could not do on-chip (§2.1)
  /// and Albatross runs on its ctrl cores.
  void enable_housekeeping(NanoTime period = 500 * kMillisecond);
  [[nodiscard]] std::uint64_t housekeeping_reclaimed() const {
    return housekeeping_reclaimed_;
  }

 private:
  void pump(std::size_t source_idx);
  void handle_ingress(PacketPtr pkt, PodId pod, NanoTime now);
  /// Common tail of scalar and burst ingress: counts the outcome and
  /// schedules the pod delivery event.
  void finish_ingress(IngressResult r, PodId pod);
  /// Order-oracle bookkeeping for one wire delivery (CPU egress AND
  /// NIC-resident tier/offload serves — recording both is what lets the
  /// oracle catch a fast-path packet overtaking its flow's slow-path
  /// predecessor).
  void oracle_record(std::uint64_t flow_id, std::uint64_t seq_in_flow,
                     PodId pod);
  /// Consumes the emissions in place (packets are counted and freed);
  /// callers pass the reused egress_scratch_ buffer.
  void handle_emissions(std::vector<EgressEmission>& emissions, PodId pod);
  void arm_reorder_timer(PodId pod);

  PlatformConfig cfg_;
  EventLoop loop_;
  CacheModel cache_;
  NicPipeline nic_;
  ServiceTables tables_;
  std::vector<std::unique_ptr<GwPod>> pods_;
  std::vector<PodTelemetry> telemetry_;
  std::unordered_map<Vni, TenantCounters> tenants_;
  TenantCounters no_tenant_;

  struct SourceBinding {
    std::unique_ptr<TrafficSource> src;
    PodId pod;
  };
  std::vector<SourceBinding> sources_;

  /// Reused per-event scratch for egress emissions: cleared before each
  /// egress_into/drain_expired_into call, keeping its capacity so the
  /// per-packet TX path never touches the allocator.
  std::vector<EgressEmission> egress_scratch_;

  std::vector<NanoTime> armed_deadline_;  ///< per pod, 0 = none
  std::vector<bool> offline_;             ///< per pod blackhole switch

  bool order_oracle_ = false;
  std::uint64_t housekeeping_reclaimed_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> last_seq_;  // flow->seq
};

}  // namespace albatross
