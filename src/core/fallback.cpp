#include "core/fallback.hpp"

namespace albatross {

FallbackWatchdog::FallbackWatchdog(Platform& platform, PodId pod,
                                   FallbackWatchdogConfig cfg)
    : platform_(platform), pod_(pod), cfg_(cfg) {}

void FallbackWatchdog::arm() {
  if (!cfg_.enabled || armed_) return;
  armed_ = true;
  last_check_ = platform_.loop().now();
  last_timeouts_ =
      platform_.nic().engine(pod_).total_stats().timeout_releases;
  platform_.loop().schedule_in(cfg_.check_period, [this] { check(); });
}

void FallbackWatchdog::rearm() {
  if (!triggered_) return;
  platform_.nic().set_pod_mode(pod_, LbMode::kPlb);
  triggered_ = false;
  bad_windows_ = 0;
}

void FallbackWatchdog::check() {
  ++checks_;
  const NanoTime now = platform_.loop().now();
  const auto timeouts =
      platform_.nic().engine(pod_).total_stats().timeout_releases;
  const double window_s =
      nanos_to_seconds(now - last_check_);
  last_rate_ = window_s > 0.0
                   ? static_cast<double>(timeouts - last_timeouts_) / window_s
                   : 0.0;
  last_timeouts_ = timeouts;
  last_check_ = now;

  if (last_rate_ > cfg_.hol_rate_threshold) {
    if (++bad_windows_ >= cfg_.consecutive_windows && !triggered_) {
      // Remediation: dynamic switch to RSS. In-flight reorder entries
      // drain naturally (the engine keeps servicing write-backs; new
      // packets simply stop reserving PSNs).
      platform_.nic().set_pod_mode(pod_, LbMode::kRss);
      triggered_ = true;
      ++trips_;
      triggered_at_ = now;
    }
  } else {
    bad_windows_ = 0;
  }
  // Keep sampling even after a trip: the counters stay fresh, a later
  // rearm() picks up monitoring with no gap, and repeated episodes after
  // a rearm can trip the fallback again.
  platform_.loop().schedule_in(cfg_.check_period, [this] { check(); });
}

}  // namespace albatross
