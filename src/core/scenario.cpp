#include "core/scenario.hpp"

#include <cmath>
#include <cstdio>

namespace albatross {

SinglePodScenario SinglePodScenario::make(ServiceKind service,
                                          std::uint16_t data_cores,
                                          LbMode mode, std::uint32_t tenants,
                                          std::uint32_t routes,
                                          bool drop_flag,
                                          std::uint16_t reorder_queues) {
  SinglePodScenario s;
  PlatformConfig pc;
  pc.tenants = tenants;
  pc.routes = routes;
  pc.tables_data_cores = data_cores;
  s.platform = std::make_unique<Platform>(pc);

  GwPodConfig gp;
  gp.service = service;
  gp.data_cores = data_cores;
  gp.drop_flag_enabled = drop_flag;
  s.pod = s.platform->create_pod(gp, reorder_queues, PktDirConfig{}, mode);
  return s;
}

ThroughputReport summarize(const PodTelemetry& t, NanoTime duration) {
  ThroughputReport r;
  const double secs = nanos_to_seconds(duration);
  if (secs <= 0.0) return r;
  r.offered_mpps = static_cast<double>(t.offered) / secs / 1e6;
  r.delivered_mpps = static_cast<double>(t.delivered) / secs / 1e6;
  r.loss_rate = t.offered ? 1.0 - static_cast<double>(t.delivered) /
                                      static_cast<double>(t.offered)
                          : 0.0;
  r.mean_latency_us = t.wire_latency.mean() / 1000.0;
  r.p99_latency_us =
      static_cast<double>(t.wire_latency.quantile(0.99)) / 1000.0;
  r.disorder_rate = t.disorder_rate();
  return r;
}

double core_capacity_mpps(ServiceKind service, const CacheModel& cache,
                          bool flow_affine) {
  const ServiceProfile p = service_profile(service);
  const double per_pkt =
      static_cast<double>(p.base_ns.count()) +
      static_cast<double>(p.mem_accesses) *
          cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{0}, flow_affine);
  return 1e3 / per_pkt;  // ns/pkt -> Mpps
}

std::string format_mpps(double mpps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fMpps", mpps);
  return buf;
}

}  // namespace albatross
