// PLB fallback to RSS (§4.1 remediation 5): when HOL symptoms persist
// and no root cause is found, the GW pod dynamically switches from PLB
// to RSS mode to remediate. The watchdog samples the pod's reorder-
// engine counters on the event loop; a sustained HOL-timeout rate above
// threshold for N consecutive windows trips the fallback. (Production
// note: this knob exists but "has not been triggered in the current
// online deployment" — the library still needs it to exist and work.)
#pragma once

#include <cstdint>

#include "core/platform.hpp"

namespace albatross {

struct FallbackWatchdogConfig {
  bool enabled = true;
  NanoTime check_period = 10 * kMillisecond;
  /// HOL timeout releases per second considered pathological.
  double hol_rate_threshold = 5000.0;
  /// Consecutive bad windows before tripping (debounce).
  int consecutive_windows = 3;
};

class FallbackWatchdog {
 public:
  FallbackWatchdog(Platform& platform, PodId pod,
                   FallbackWatchdogConfig cfg = {});

  /// Starts periodic checks on the platform's event loop.
  void arm();

  /// Returns the pod to PLB mode and resumes watching for the next
  /// episode. A no-op unless tripped. Monitoring itself never stops on a
  /// trip (the watchdog keeps sampling), so rearm() can be called at any
  /// later virtual time — e.g. by the recovery controller once the
  /// underlying NIC fault clears.
  void rearm();

  [[nodiscard]] bool triggered() const { return triggered_; }
  [[nodiscard]] NanoTime triggered_at() const { return triggered_at_; }
  [[nodiscard]] std::uint64_t trip_count() const { return trips_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  [[nodiscard]] double last_hol_rate() const { return last_rate_; }

 private:
  void check();

  Platform& platform_;
  PodId pod_;
  FallbackWatchdogConfig cfg_;
  std::uint64_t last_timeouts_ = 0;
  NanoTime last_check_ = NanoTime{0};
  int bad_windows_ = 0;
  bool triggered_ = false;
  bool armed_ = false;
  NanoTime triggered_at_ = NanoTime{0};
  std::uint64_t trips_ = 0;
  std::uint64_t checks_ = 0;
  double last_rate_ = 0.0;
};

}  // namespace albatross
