// JSON experiment configuration: declaratively describe a platform, its
// GW pods and the traffic mix, then run it — the way fleet tooling
// drives gateways, and what `albatross_sim --config file.json` loads.
//
// Schema (all fields optional with sane defaults):
// {
//   "platform": { "tenants": 200, "routes": 20000, "working_set_gb": 4,
//                 "gop": { "enabled": true, "stage1_mpps": 8.0,
//                          "stage2_mpps": 2.0, "pre_meter_mpps": 10.0 } },
//   "pods": [ { "service": "vpc|internet|idc|cloud", "data_cores": 8,
//               "mode": "plb|rss", "drop_flag": true,
//               "reorder_queues": 0, "offload": false,
//               "priority_queues": true } ],
//   "traffic": [
//     { "type": "poisson", "pod": 0, "rate_mpps": 2.0, "flows": 5000,
//       "tenants": 64, "packet_bytes": 256, "zipf": 0.9, "seed": 1 },
//     { "type": "hitter", "pod": 0, "vni": 7,
//       "steps": [[0, 1.0], [50, 3.0]] },          // [ms, Mpps]
//     { "type": "microburst", "pod": 0, "burst_packets": 500,
//       "gap_ms": 10, "burst_rate_mpps": 15 } ],
//   "duration_ms": 100,
//   "order_oracle": true
// }
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/platform.hpp"
#include "core/scenario.hpp"

namespace albatross {

struct ExperimentResult {
  std::vector<ThroughputReport> pods;
  NanoTime duration = NanoTime{0};
};

/// Name -> enum helpers shared by every JSON loader (experiment and
/// chaos configs). Throw std::runtime_error on unknown names.
[[nodiscard]] ServiceKind service_from_name(const std::string& name);
[[nodiscard]] LbMode mode_from_name(const std::string& name);

/// Builds a Platform (+pods) from the config; `pods_out` receives the
/// created pod ids in declaration order. Throws std::runtime_error on
/// unknown service/mode names.
std::unique_ptr<Platform> build_platform_from_json(const JsonValue& cfg,
                                                   std::vector<PodId>& pods_out);

/// Attaches every traffic source in cfg["traffic"] to its pod.
void attach_traffic_from_json(Platform& platform, const JsonValue& cfg,
                              const std::vector<PodId>& pods);

/// Convenience: parse text -> build -> run -> summarize.
/// Throws std::runtime_error on parse errors.
ExperimentResult run_experiment_from_json(std::string_view json_text);

}  // namespace albatross
