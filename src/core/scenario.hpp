// Scenario helpers shared by benches, examples and integration tests:
// canned platform/pod/traffic setups matching the paper's experimental
// configurations, plus result formatting.
#pragma once

#include <memory>
#include <string>

#include "core/platform.hpp"
#include "traffic/heavy_hitter.hpp"
#include "traffic/microburst.hpp"
#include "traffic/tenant_gen.hpp"

namespace albatross {

/// A single-pod experiment harness. The paper's per-pod experiments all
/// share this shape: one service, one traffic mix, run, read telemetry.
struct SinglePodScenario {
  std::unique_ptr<Platform> platform;
  PodId pod = 0;

  /// Builds a platform with one pod of `data_cores` running `service`
  /// in `mode`. Scaled-down defaults keep simulations fast; the scale
  /// honestly preserves per-core arithmetic (1 Mpps/core class).
  static SinglePodScenario make(ServiceKind service, std::uint16_t data_cores,
                                LbMode mode, std::uint32_t tenants = 200,
                                std::uint32_t routes = 20'000,
                                bool drop_flag = true,
                                std::uint16_t reorder_queues = 0);
};

/// Measured service rate of one pod over a run.
struct ThroughputReport {
  double offered_mpps = 0.0;
  double delivered_mpps = 0.0;
  double loss_rate = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double disorder_rate = 0.0;
};

[[nodiscard]] ThroughputReport summarize(const PodTelemetry& t,
                                         NanoTime duration);

/// Estimated single-core capacity (Mpps) for a service under the given
/// cache model — the closed-form used to scale experiments.
[[nodiscard]] double core_capacity_mpps(ServiceKind service,
                                        const CacheModel& cache,
                                        bool flow_affine);

/// Formats a Mpps value like the paper's tables ("81.6Mpps").
[[nodiscard]] std::string format_mpps(double mpps);

}  // namespace albatross
