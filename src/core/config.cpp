#include "core/config.hpp"

#include <stdexcept>

#include "traffic/heavy_hitter.hpp"
#include "traffic/microburst.hpp"

namespace albatross {

ServiceKind service_from_name(const std::string& name) {
  if (name == "vpc" || name == "vpc-vpc") return ServiceKind::kVpcVpc;
  if (name == "internet" || name == "vpc-internet") {
    return ServiceKind::kVpcInternet;
  }
  if (name == "idc" || name == "vpc-idc") return ServiceKind::kVpcIdc;
  if (name == "cloud" || name == "vpc-cloudservice") {
    return ServiceKind::kVpcCloudService;
  }
  throw std::runtime_error("unknown service: " + name);
}

LbMode mode_from_name(const std::string& name) {
  if (name == "plb") return LbMode::kPlb;
  if (name == "rss") return LbMode::kRss;
  throw std::runtime_error("unknown mode: " + name);
}

std::unique_ptr<Platform> build_platform_from_json(
    const JsonValue& cfg, std::vector<PodId>& pods_out) {
  const JsonValue& pc_json = cfg["platform"];
  PlatformConfig pc;
  pc.tenants =
      static_cast<std::uint32_t>(pc_json.get_int("tenants", pc.tenants));
  pc.routes =
      static_cast<std::uint32_t>(pc_json.get_int("routes", pc.routes));
  pc.working_set_bytes = static_cast<std::uint64_t>(
                             pc_json.get_number("working_set_gb", 4.0) *
                             1024.0 * 1024.0 * 1024.0);
  const JsonValue& gop = pc_json["gop"];
  pc.nic.gop_enabled = gop.get_bool("enabled", true);
  pc.nic.gop.stage1_rate_pps = gop.get_number("stage1_mpps", 8.0) * 1e6;
  pc.nic.gop.stage2_rate_pps = gop.get_number("stage2_mpps", 2.0) * 1e6;
  pc.nic.gop.pre_meter_rate_pps =
      gop.get_number("pre_meter_mpps", 10.0) * 1e6;

  auto platform = std::make_unique<Platform>(pc);

  for (const auto& pod_json : cfg["pods"].as_array()) {
    GwPodConfig gp;
    gp.service = service_from_name(pod_json.get_string("service", "vpc"));
    gp.data_cores =
        static_cast<std::uint16_t>(pod_json.get_int("data_cores", 8));
    gp.drop_flag_enabled = pod_json.get_bool("drop_flag", true);
    PktDirConfig dir;
    dir.priority_queues_enabled = pod_json.get_bool("priority_queues", true);
    const auto mode = mode_from_name(pod_json.get_string("mode", "plb"));
    const auto queues =
        static_cast<std::uint16_t>(pod_json.get_int("reorder_queues", 0));
    const PodId id = platform->create_pod(gp, queues, dir, mode);
    if (pod_json.get_bool("offload", false)) {
      platform->nic().enable_session_offload(id);
    }
    pods_out.push_back(id);
  }
  return platform;
}

void attach_traffic_from_json(Platform& platform, const JsonValue& cfg,
                              const std::vector<PodId>& pods) {
  for (const auto& t : cfg["traffic"].as_array()) {
    const auto pod_index = static_cast<std::size_t>(t.get_int("pod", 0));
    if (pod_index >= pods.size()) {
      throw std::runtime_error("traffic entry references unknown pod");
    }
    const PodId pod = pods[pod_index];
    const std::string type = t.get_string("type", "poisson");

    if (type == "poisson") {
      PoissonFlowConfig c;
      c.rate_pps = t.get_number("rate_mpps", 1.0) * 1e6;
      c.num_flows = static_cast<std::size_t>(t.get_int("flows", 5000));
      c.tenants = static_cast<std::uint32_t>(t.get_int("tenants", 64));
      c.packet_bytes =
          static_cast<std::size_t>(t.get_int("packet_bytes", 256));
      c.zipf_alpha = t.get_number("zipf", 0.9);
      c.seed = static_cast<std::uint64_t>(t.get_int("seed", 1));
      platform.attach_source(std::make_unique<PoissonFlowSource>(c), pod);
    } else if (type == "hitter") {
      HeavyHitterConfig c;
      c.flow = make_flow(
          static_cast<std::uint64_t>(t.get_int("flow_id", 0x70000)),
          static_cast<Vni>(t.get_int("vni", 7)), 0);
      for (const auto& step : t["steps"].as_array()) {
        const auto& pair = step.as_array();
        if (pair.size() != 2) {
          throw std::runtime_error("hitter step must be [ms, mpps]");
        }
        c.profile.add_step(pair[0].as_int() * kMillisecond,
                           pair[1].as_number() * 1e6);
      }
      platform.attach_source(std::make_unique<HeavyHitterSource>(c), pod);
    } else if (type == "microburst") {
      MicroburstConfig c;
      c.mean_burst_packets =
          static_cast<std::size_t>(t.get_int("burst_packets", 500));
      c.mean_burst_gap = static_cast<NanoTime>(
          t.get_number("gap_ms", 10.0) * kMillisecond);
      c.burst_rate_pps = t.get_number("burst_rate_mpps", 15.0) * 1e6;
      c.single_flow_bursts = t.get_bool("single_flow", true);
      c.seed = static_cast<std::uint64_t>(t.get_int("seed", 11));
      platform.attach_source(std::make_unique<MicroburstSource>(c), pod);
    } else {
      throw std::runtime_error("unknown traffic type: " + type);
    }
  }
}

ExperimentResult run_experiment_from_json(std::string_view json_text) {
  JsonParseError err;
  const auto cfg = json_parse(json_text, &err);
  if (!cfg) {
    throw std::runtime_error("config parse error at offset " +
                             std::to_string(err.offset) + ": " +
                             err.message);
  }
  std::vector<PodId> pods;
  auto platform = build_platform_from_json(*cfg, pods);
  attach_traffic_from_json(*platform, *cfg, pods);
  if ((*cfg).get_bool("order_oracle", false)) {
    platform->enable_order_oracle(true);
  }

  const NanoTime duration =
      (*cfg).get_int("duration_ms", 100) * kMillisecond;
  platform->run_until(duration);

  ExperimentResult result;
  result.duration = duration;
  for (const PodId pod : pods) {
    result.pods.push_back(summarize(platform->telemetry(pod), duration));
  }
  return result;
}

}  // namespace albatross
