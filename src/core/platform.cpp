#include "core/platform.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "container/pod_spec.hpp"

namespace albatross {

Platform::Platform(PlatformConfig cfg)
    : cfg_(cfg), cache_(cfg.cache, cfg.numa), nic_(cfg.nic) {
  tables_.populate(cfg_.tenants, cfg_.routes, cfg_.tables_data_cores);
  cache_.set_working_set_bytes(cfg_.working_set_bytes != 0
                                   ? cfg_.working_set_bytes
                                   : tables_.memory_bytes());
}

PodId Platform::create_pod(const GwPodConfig& pod_cfg,
                           std::uint16_t reorder_queues,
                           const PktDirConfig& dir, LbMode mode) {
  const auto id = static_cast<PodId>(pods_.size());
  GwPodConfig cfg = pod_cfg;
  cfg.id = id;

  PlbEngineConfig plb;
  plb.num_rx_queues = cfg.data_cores;
  plb.num_reorder_queues = reorder_queues != 0
                               ? reorder_queues
                               : reorder_queues_for_cores(cfg.data_cores);
  // RSS-mode pods still register an engine: mode switching is a runtime
  // knob (§4.1 remediation 5, "PLB fallback to RSS").
  nic_.register_pod(id, plb, dir, mode);

  auto pod = std::make_unique<GwPod>(cfg, loop_, tables_, cache_);
  // Host drops release the DPU tier's in-flight handover credits (a
  // dropped packet can never be overtaken at the wire). Wired for every
  // pod because the tier can be enabled after creation.
  pod->set_drop_hook(
      [this, id](const FiveTuple& tuple, PktClass cls, NanoTime now) {
        if (nic_.dpu_tier_enabled(id) && cls != PktClass::kPriority) {
          nic_.dpu_tier(id).observe_host_drop(tuple, now);
        }
      });
  pod->set_egress([this, id](PacketPtr pkt, NanoTime submit) {
    const NanoTime at_fpga = nic_.tx_submit(id, submit, pkt->size());
    Packet* p = pkt.release();
    loop_.schedule_at(at_fpga, [this, id, p, at_fpga] {
      egress_scratch_.clear();
      nic_.egress_into(PacketPtr(p), id, at_fpga, egress_scratch_);
      handle_emissions(egress_scratch_, id);
      arm_reorder_timer(id);
    });
  });
  pods_.push_back(std::move(pod));
  telemetry_.emplace_back();
  armed_deadline_.push_back(NanoTime{});
  offline_.push_back(false);
  return id;
}

void Platform::attach_source(std::unique_ptr<TrafficSource> src, PodId pod) {
  sources_.push_back(SourceBinding{std::move(src), pod});
  const std::size_t idx = sources_.size() - 1;
  const auto t = sources_[idx].src->next_time();
  if (t) {
    loop_.schedule_at(*t, [this, idx] { pump(idx); });
  }
}

void Platform::pump(std::size_t source_idx) {
  SourceBinding& b = sources_[source_idx];
  const std::size_t max_batch =
      std::min(std::max<std::size_t>(cfg_.ingress_batch, 1),
               NicPipeline::kMaxIngressBurst);
  const NanoTime window_end = loop_.now() + cfg_.ingress_batch_window;

  // Draw up to a batch of arrivals from this source; each keeps its
  // exact arrival timestamp. Arrivals past the window stay queued for
  // the next activation so the batch never reaches far ahead of the
  // clock.
  std::array<PacketPtr, NicPipeline::kMaxIngressBurst> pkts;
  std::array<NanoTime, NicPipeline::kMaxIngressBurst> at;
  std::size_t n = 0;
  while (n < max_batch) {
    const auto t = b.src->next_time();
    if (!t || (n > 0 && *t > window_end)) break;
    const NanoTime arrival = *t;
    PacketPtr pkt = b.src->emit();
    if (pkt != nullptr) {
      pkts[n] = std::move(pkt);
      at[n] = arrival;
      ++n;
    }
  }

  if (n == 1 || offline_[b.pod]) {
    // Scalar path (also the blackhole path, where per-packet counting
    // is all that happens anyway).
    for (std::size_t i = 0; i < n; ++i) {
      handle_ingress(std::move(pkts[i]), b.pod, at[i]);
    }
  } else if (n > 1) {
    PodTelemetry& tel = telemetry_[b.pod];
    tel.offered += n;
    for (std::size_t i = 0; i < n; ++i) ++tenants_[pkts[i]->vni].offered;
    std::array<IngressResult, NicPipeline::kMaxIngressBurst> results;
    nic_.ingress_burst(std::span(pkts.data(), n), std::span(at.data(), n),
                       b.pod, std::span(results.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      finish_ingress(std::move(results[i]), b.pod);
    }
  }

  const auto t = b.src->next_time();
  if (t) {
    loop_.schedule_at(*t, [this, source_idx] { pump(source_idx); });
  }
}

void Platform::handle_ingress(PacketPtr pkt, PodId pod, NanoTime now) {
  PodTelemetry& tel = telemetry_[pod];
  ++tel.offered;
  TenantCounters& tc = tenants_[pkt->vni];
  ++tc.offered;
  if (offline_[pod]) {
    // The pod is dead but routes still point at it: the packet vanishes.
    ++tel.blackholed;
    ++tc.dropped_other;
    return;
  }

  finish_ingress(nic_.ingress(std::move(pkt), pod, now), pod);
}

void Platform::finish_ingress(IngressResult r, PodId pod) {
  PodTelemetry& tel = telemetry_[pod];
  TenantCounters& tc = tenants_[r.pkt->vni];
  switch (r.outcome) {
    case IngressOutcome::kDroppedRateLimit:
      ++tel.dropped_rate_limit;
      ++tc.dropped_rate_limit;
      return;
    case IngressOutcome::kDroppedReorderFull:
      ++tel.dropped_reorder_full;
      ++tc.dropped_other;
      return;
    case IngressOutcome::kOffloaded: {
      // Handled entirely on the NIC (FPGA session offload or DPU tier):
      // deliver_time is the wire time; count it like any other delivery.
      ++tel.delivered;
      ++tel.delivered_in_order;
      tel.wire_latency.record(r.deliver_time - r.pkt->rx_time);
      ++tc.delivered;
      if (order_oracle_) {
        // Record at the *wire* time, not here: ingress batching can
        // process this arrival before a CPU forward of the same flow
        // that egresses earlier in real time, and recording now would
        // count that as an inversion the wire never saw.
        const std::uint64_t fid = r.pkt->flow_id;
        const std::uint64_t seq = r.pkt->seq_in_flow;
        if (r.deliver_time <= loop_.now()) {
          oracle_record(fid, seq, pod);
        } else {
          loop_.schedule_at(r.deliver_time, [this, fid, seq, pod] {
            oracle_record(fid, seq, pod);
          });
        }
      }
      return;
    }
    case IngressOutcome::kDelivered:
      break;
  }
  arm_reorder_timer(pod);

  Packet* raw = r.pkt.release();
  const std::uint16_t q = r.rx_queue;
  const NanoTime at = r.deliver_time;
  loop_.schedule_at(at, [this, raw, pod, q, at] {
    pods_[pod]->deliver(PacketPtr(raw), q, at);
  });
}

void Platform::handle_emissions(std::vector<EgressEmission>& emissions,
                                PodId pod) {
  PodTelemetry& tel = telemetry_[pod];
  const bool tiered = nic_.dpu_tier_enabled(pod);
  const bool offload = nic_.session_offload_enabled(pod);
  for (auto& e : emissions) {
    if (e.pkt == nullptr) continue;
    if (tiered && e.pkt->pkt_class != PktClass::kPriority) {
      // Hierarchical tier: CPU forwards feed the controller's mice
      // filter and in-flight handover gate instead of installing the
      // session directly. The credit lands at the packet's *wire* time,
      // not the emission-processing time: an admission opened by this
      // forward must not take effect while the packet still sits in the
      // deparser/TX residue, or a DPU-served successor arriving inside
      // that window would overtake it on the wire.
      const FiveTuple tuple = e.pkt->tuple;
      const NanoTime wire = e.wire_time;
      if (wire <= loop_.now()) {
        nic_.dpu_tier(pod).observe_forward(tuple, wire);
      } else {
        loop_.schedule_at(wire, [this, pod, tuple, wire] {
          if (nic_.dpu_tier_enabled(pod)) {
            nic_.dpu_tier(pod).observe_forward(tuple, wire);
          }
        });
      }
    } else if (offload && e.pkt->pkt_class != PktClass::kPriority) {
      // Self-learning session offload: the first CPU-forwarded packet of
      // a flow installs its session on the FPGA; later packets take the
      // NIC-only fast path.
      nic_.session_offload(pod).install(e.pkt->tuple, 0,
                                        loop_.now());
    }
    ++tel.delivered;
    e.in_order ? ++tel.delivered_in_order : ++tel.delivered_disordered;
    const NanoTime latency = e.wire_time - e.pkt->rx_time;
    tel.wire_latency.record(latency);
    ++tenants_[e.pkt->vni].delivered;

    if (order_oracle_) oracle_record(e.pkt->flow_id, e.pkt->seq_in_flow, pod);
  }
}

void Platform::oracle_record(std::uint64_t flow_id, std::uint64_t seq_in_flow,
                             PodId pod) {
  // Oracle: per-flow sequence must be non-decreasing at the wire.
  // Recording order stands in for wire order: offloaded packets are
  // recorded at their exact wire time, and every CPU-path packet's
  // remaining latency-to-wire exceeds the deparser residue of the
  // previously recorded packet, so an inversion in recording order is a
  // real one.
  auto [it, fresh] = last_seq_.try_emplace(flow_id, 0);
  if (!fresh && seq_in_flow < it->second) {
    ++telemetry_[pod].flow_order_violations;
  }
  if (fresh || seq_in_flow > it->second) {
    it->second = seq_in_flow;
  }
}

void Platform::arm_reorder_timer(PodId pod) {
  const auto deadline = nic_.next_reorder_deadline(pod);
  if (!deadline) {
    armed_deadline_[pod] = NanoTime{};
    return;
  }
  if (armed_deadline_[pod] != NanoTime{} && armed_deadline_[pod] <= *deadline) {
    return;  // an earlier (or equal) timer is already pending
  }
  armed_deadline_[pod] = *deadline;
  const NanoTime at = *deadline + Nanos{1};  // strictly past the timeout
  loop_.schedule_at(at, [this, pod, at] {
    if (armed_deadline_[pod] == NanoTime{} || armed_deadline_[pod] + Nanos{1} != at) {
      // Superseded by an earlier timer; the structure re-arms below
      // regardless, so stale timers are cheap no-ops.
    }
    armed_deadline_[pod] = NanoTime{};
    egress_scratch_.clear();
    nic_.drain_expired_into(pod, loop_.now(), egress_scratch_);
    handle_emissions(egress_scratch_, pod);
    arm_reorder_timer(pod);
  });
}

void Platform::set_pod_offline(PodId pod, bool offline) {
  offline_[pod] = offline;
}

const TenantCounters& Platform::tenant(Vni vni) const {
  const auto it = tenants_.find(vni);
  return it != tenants_.end() ? it->second : no_tenant_;
}

void Platform::run_until(NanoTime until) { loop_.run_until(until); }

void Platform::enable_housekeeping(NanoTime period) {
  schedule_periodic(loop_, period, [this] {
    const NanoTime now = loop_.now();
    for (auto& table : tables_.per_core_conntrack) {
      housekeeping_reclaimed_ += table->age(now);
    }
    for (PodId pod = 0; pod < pods_.size(); ++pod) {
      if (nic_.session_offload_enabled(pod)) {
        housekeeping_reclaimed_ += nic_.session_offload(pod).age(now);
      }
      if (nic_.dpu_tier_enabled(pod)) {
        housekeeping_reclaimed_ += nic_.dpu_tier(pod).age(now);
      }
    }
    return true;  // run for the platform's lifetime
  });
}

void Platform::reset_telemetry() {
  for (auto& t : telemetry_) t = PodTelemetry{};
  tenants_.clear();
  last_seq_.clear();
}

}  // namespace albatross
