// Fleet availability SLO report. The paper argues Albatross by cost
// and Mpps; a production gateway fleet is ultimately judged on an
// availability objective ("three nines per tenant"). This module turns
// the fleet run's incident records into that report:
//
//  - per-tenant downtime: a tenant is down exactly while its gateway's
//    VIP is blackholed (fault -> withdraw) — so tenant downtime takes
//    at most `gateways` distinct values and exact *weighted* percentiles
//    are computable from per-gateway (downtime, weight) pairs, no
//    million-entry arrays needed;
//  - per-AZ rollups: incidents, packet conservation counters, p99/p999
//    blackhole duration, Fig. 15 cost/power priced at the AZ's actual
//    pod_sets through the shared AzCostModel path;
//  - fleet availability = 1 - sum_g share_g * downtime_g / horizon
//    (load-weighted), and error budget burn against `slo_target`.
//
// JSON output uses JsonObject (std::map) so key order — and therefore
// the whole report — is deterministic for same-seed byte-compare tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace albatross::fleet {

struct WeightedSample {
  double value = 0.0;
  double weight = 0.0;
};

/// Exact weighted percentile: sorts by value and returns the smallest
/// value whose cumulative weight reaches q * total. Empty input -> 0;
/// one sample -> its value (any q); q <= 0 -> min, q >= 1 -> max.
[[nodiscard]] double weighted_quantile(std::vector<WeightedSample> samples,
                                       double q);

struct GatewaySlo {
  std::uint32_t global_index = 0;  ///< fleet-global gateway number
  std::string az;
  double downtime_ms = 0.0;   ///< summed blackhole windows
  double share = 0.0;         ///< fraction of fleet load (tenant weight)
  std::uint64_t tenant_count = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t blackholed = 0;
};

struct AzSlo {
  std::string name;
  std::uint32_t gateways = 0;
  std::uint32_t pod_sets = 0;
  std::uint64_t incidents = 0;
  std::uint64_t recovered = 0;
  std::uint64_t redeploys = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t packets_lost = 0;
  double downtime_ms_total = 0.0;
  double worst_gateway_downtime_ms = 0.0;
  double availability = 1.0;        ///< load-weighted, within this AZ
  double blackhole_p99_ms = 0.0;    ///< per-incident duration quantiles
  double blackhole_p999_ms = 0.0;
  double detect_p99_ms = 0.0;
  double recovery_p99_ms = 0.0;
  double cost = 0.0;                ///< albatross deployment, pod_sets-scaled
  double power_w = 0.0;
  double cost_legacy = 0.0;         ///< same role sheet, gen1/gen2 boxes
  double power_legacy_w = 0.0;
};

struct TenantSlo {
  /// Load-weighted downtime percentiles (what the traffic experienced).
  double downtime_p50_ms = 0.0;
  double downtime_p99_ms = 0.0;
  double downtime_p999_ms = 0.0;
  /// Headcount-weighted (what fraction of tenants experienced it).
  double count_p50_ms = 0.0;
  double count_p99_ms = 0.0;
  double count_p999_ms = 0.0;
  double worst_ms = 0.0;
  /// Fraction of tenants (by headcount) whose availability met target.
  double fraction_meeting_slo = 1.0;
};

struct SloReport {
  std::string fleet;
  std::uint64_t seed = 0;
  double horizon_ms = 0.0;
  double slo_target = 0.999;
  std::uint64_t tenants = 0;
  std::uint32_t gateways = 0;
  double availability = 1.0;        ///< fleet-wide, load-weighted
  double error_budget_burn = 0.0;   ///< (1-availability)/(1-target)
  bool slo_met = true;
  std::uint64_t incidents = 0;
  std::uint64_t recovered = 0;
  std::uint64_t redeploys = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t packets_lost = 0;
  double delivery_ratio = 1.0;
  TenantSlo tenant;
  std::vector<AzSlo> azs;
  std::vector<GatewaySlo> per_gateway;
  double cost_total = 0.0;
  double power_total_w = 0.0;
  double cost_legacy_total = 0.0;
  double power_legacy_total_w = 0.0;

  /// Deterministic JSON (sorted keys; numbers via JsonValue::dump).
  [[nodiscard]] JsonValue to_json() const;
  /// Human-oriented multi-line rendering for the CLI.
  [[nodiscard]] std::string text() const;
};

}  // namespace albatross::fleet
