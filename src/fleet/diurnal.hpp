// Diurnal load curve: a deterministic rate multiplier over virtual
// time. Production gateway fleets see a pronounced day/night swing (the
// hyperscale regime Gryphon targets); the fleet engine compresses one
// "day" into a configurable virtual period and modulates every pod's
// offered rate by this curve, per AZ phase-shifted so the fleet's AZs
// peak at different times the way geographically spread AZs do.
//
// Two shapes are supported:
//  - raised cosine between `trough` and `peak` (default): load bottoms
//    at t = 0 (plus phase) and peaks half a period later;
//  - piecewise-linear keypoints [(offset-in-period, multiplier), ...]
//    for asymmetric curves (sharp morning ramp, long evening tail).
// Both wrap modulo `period`, are pure functions of virtual time, and
// never touch a wall clock — two runs with the same spec see the same
// multipliers (a determinism requirement, docs/STATIC_ANALYSIS.md).
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"

namespace albatross::fleet {

struct DiurnalConfig {
  NanoTime period = 20 * kSecond;  ///< one compressed "day"
  double trough = 0.4;             ///< multiplier at the quietest point
  double peak = 1.0;               ///< multiplier at the busiest point
  NanoTime phase = NanoTime{0};    ///< shifts the curve (per-AZ offset)
  /// Optional piecewise-linear keypoints (offset within period,
  /// multiplier). Empty = raised cosine. Points need not be sorted;
  /// the curve interpolates linearly and wraps from the last point back
  /// to the first across the period boundary.
  std::vector<std::pair<NanoTime, double>> points;
};

class DiurnalCurve {
 public:
  DiurnalCurve() : DiurnalCurve(DiurnalConfig{}) {}
  explicit DiurnalCurve(DiurnalConfig cfg);

  /// Rate multiplier at virtual time `t` (>= 0, wraps every period).
  [[nodiscard]] double multiplier(NanoTime t) const;

  [[nodiscard]] const DiurnalConfig& config() const { return cfg_; }

  /// Mean multiplier over one full period (closed form for the cosine
  /// shape, trapezoid integration for keypoints) — used to size total
  /// packet budgets for a scenario.
  [[nodiscard]] double mean_multiplier() const;

 private:
  DiurnalConfig cfg_;
};

}  // namespace albatross::fleet
