// Million-tenant population math. The fleet's tenants are Zipf-skewed
// over *tenants* (the paper's hyperscale premise: a few VNIs dominate
// offered load) and hash-sharded across every gateway in the fleet the
// way anycast + ECMP spreads prefixes. Holding a million FlowInfo
// tables per pod would dwarf the simulation itself, so the population
// is summarised in one O(N) pass:
//
//  - per-gateway *weight share* (what fraction of fleet load lands on
//    each gateway) -> per-pod offered rate;
//  - per-gateway *tenant count* -> SLO tenant-weighted downtime;
//  - a capped per-gateway hot-tenant sample (tenant ids are assigned in
//    weight order, so the first ids seen per gateway are its heaviest)
//    -> the concrete flow populations fed to PoissonFlowSource.
//
// Everything is a pure function of (tenants, alpha, seed, gateways):
// two runs with the same spec shard identically, a determinism
// requirement for byte-identical fleet reports.
#pragma once

#include <cstdint>
#include <vector>

namespace albatross::fleet {

class TenantPopulation {
 public:
  TenantPopulation(std::uint64_t tenants, double alpha, std::uint64_t seed,
                   std::uint32_t total_gateways,
                   std::uint32_t max_tenants_per_gateway);

  [[nodiscard]] std::uint64_t tenants() const { return tenants_; }
  [[nodiscard]] std::uint32_t gateway_count() const {
    return static_cast<std::uint32_t>(share_.size());
  }

  /// Normalised Zipf weight of tenant `t` (rank = t, heaviest first).
  [[nodiscard]] double weight(std::uint64_t t) const;

  /// Which fleet-global gateway tenant `t` hash-shards to.
  [[nodiscard]] std::uint32_t gateway(std::uint64_t t) const;

  /// Fraction of total fleet load carried by gateway `g` (sums to 1).
  [[nodiscard]] double gateway_share(std::uint32_t g) const {
    return share_[g];
  }
  [[nodiscard]] std::uint64_t gateway_tenant_count(std::uint32_t g) const {
    return tenant_count_[g];
  }
  /// Hot-tenant sample for gateway `g`: global tenant ids, heaviest
  /// first, at most `max_tenants_per_gateway` of them.
  [[nodiscard]] const std::vector<std::uint64_t>& tenants_for_gateway(
      std::uint32_t g) const {
    return hot_[g];
  }

 private:
  std::uint64_t tenants_;
  double alpha_;
  std::uint64_t seed_;
  double harmonic_ = 1.0;  ///< generalised harmonic number H(N, alpha)
  std::vector<double> share_;
  std::vector<std::uint64_t> tenant_count_;
  std::vector<std::vector<std::uint64_t>> hot_;
};

}  // namespace albatross::fleet
