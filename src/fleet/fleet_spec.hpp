// Fleet scenario spec: the JSON-loadable description of a multi-AZ
// gateway fleet run — the cluster-scale counterpart of the single-AZ
// chaos experiment config. A spec names the availability zones (each a
// GatewayChaosHarness: Platform + Orchestrator + uplink + BGP proxies),
// the tenant population (millions of VNIs, Zipf-skewed over *tenants*),
// the diurnal load curve, the rolling-upgrade wave and the fault
// script. `albatross_sim fleet --scenario file.json` loads one of
// these, runs the FleetEngine and prints the availability SLO report.
//
// Schema (everything optional; the "fleet" wrapper may be omitted):
// {
//   "fleet": {
//     "name": "diurnal-2az", "seed": 1,
//     "horizon_ms": 30000, "tick_ms": 250, "drain_ms": 400,
//     "tenants": 1000000, "tenant_zipf_alpha": 1.05,
//     "local_vnis": 64, "hot_tenants_per_gateway": 2048,
//     "flows_per_gateway": 512, "flow_zipf_alpha": 0.9,
//     "packet_bytes": 256, "total_rate_pps": 400000,
//     "slo_target": 0.999, "service": "vpc",
//     "pod_startup_ms": 10000, "validation_ms": 5000,
//     "diurnal": { "period_ms": 20000, "trough": 0.4, "peak": 1.0,
//                  "points": [ { "at_ms": 0, "mult": 0.4 }, ... ] },
//     "upgrade": { "enabled": true, "start_ms": 4000,
//                  "stagger_ms": 1500, "gateways_per_az": 1 },
//     "azs": [ { "name": "az-a", "pod_sets": 3, "gateways_per_set": 4,
//                "servers": 3, "data_cores": 4, "dual_proxy": true,
//                "diurnal_phase_ms": 0 }, ... ],
//     "faults": [ { "az": -1, "at_ms": 9000, "kind": "pod_crash",
//                   "gateway": 0, "duration_ms": 0, "magnitude": 0 } ]
//   }
// }
// "az": -1 scopes a fault fleet-wide (applied in every AZ); >= 0 pins
// it to one zone. Times are milliseconds in JSON, NanoTime in C++.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/json.hpp"
#include "common/types.hpp"
#include "fleet/diurnal.hpp"
#include "gateway/service.hpp"

namespace albatross::fleet {

/// One availability zone: `pod_sets` copies of a `gateways_per_set`
/// role sheet (mirroring AzRequirements so the Fig. 15 cost model
/// prices the same geometry the simulation runs).
struct FleetAzSpec {
  std::string name = "az";
  std::uint16_t pod_sets = 1;
  std::uint16_t gateways_per_set = 4;
  std::uint16_t servers = 2;
  std::uint16_t data_cores = 4;
  bool dual_proxy = true;
  NanoTime diurnal_phase = NanoTime{0};

  [[nodiscard]] std::uint16_t gateways() const {
    return static_cast<std::uint16_t>(pod_sets * gateways_per_set);
  }
};

/// Rolling upgrade wave: starting at `start`, every AZ redeploys its
/// gateways one after another, `stagger` apart, `parallel_per_az` in
/// flight at once. Redeploys ride the make-before-break scale_up path,
/// so a healthy wave causes zero blackhole — the SLO report proves it.
struct FleetUpgradeSpec {
  bool enabled = false;
  NanoTime start = 4 * kSecond;
  NanoTime stagger = 1500 * kMillisecond;
  std::uint16_t parallel_per_az = 1;
};

/// A fault scoped to one AZ (`az` >= 0) or the whole fleet (`az` < 0).
struct FleetFaultSpec {
  std::int32_t az = -1;
  FaultEvent event;
};

struct FleetSpec {
  std::string name = "fleet";
  std::uint64_t seed = 1;
  NanoTime horizon = 30 * kSecond;
  /// Lockstep diurnal slice: source rates are re-set every tick.
  NanoTime tick = 250 * kMillisecond;
  /// Post-horizon drain window (sources quiesced) so the packet-
  /// conservation ledger can run over a settled data plane.
  NanoTime drain = 400 * kMillisecond;

  /// Tenant population (global VNIs). Weights are Zipf(alpha) over
  /// tenant rank; tenants hash-shard across every gateway in the fleet.
  std::uint64_t tenants = 1'000'000;
  double tenant_zipf_alpha = 1.05;
  /// Platform table size per AZ; global tenants fold into local VNIs
  /// 1..local_vnis (the harness tables stay small while the population
  /// math runs at full fleet scale).
  std::uint32_t local_vnis = 64;
  /// Hot-tenant sample kept per gateway for flow construction.
  std::uint32_t hot_tenants_per_gateway = 2048;

  std::uint32_t flows_per_gateway = 512;
  double flow_zipf_alpha = 0.9;
  std::size_t packet_bytes = 256;
  /// Aggregate offered load across the whole fleet at multiplier 1.0;
  /// split per gateway by its tenant weight share.
  double total_rate_pps = 400'000.0;

  double slo_target = 0.999;  ///< availability objective (error budget)
  ServiceKind service = ServiceKind::kVpcVpc;
  NanoTime pod_startup = 10 * kSecond;
  NanoTime validation = 5 * kSecond;

  DiurnalConfig diurnal;
  FleetUpgradeSpec upgrade;
  std::vector<FleetAzSpec> azs;
  std::vector<FleetFaultSpec> faults;

  [[nodiscard]] std::uint32_t total_gateways() const;
  /// Gateway index of `az`'s first gateway in fleet-global numbering.
  [[nodiscard]] std::uint32_t az_gateway_base(std::size_t az) const;

  /// Parses the schema above. Throws std::runtime_error on malformed
  /// input (unknown fault kinds / service names, no AZs).
  static FleetSpec from_json(const JsonValue& v);
  static FleetSpec from_json_text(std::string_view text);
  [[nodiscard]] JsonValue to_json() const;

  /// Small deterministic scenario for tests and the CI smoke job:
  /// 2 AZs x 2 gateways, shortened orchestrator timings, one crash
  /// fault, a rolling upgrade and a 6 s horizon.
  static FleetSpec smoke();
};

}  // namespace albatross::fleet
