// FleetEngine: multi-AZ, million-tenant cluster simulation. Each AZ is
// a full GatewayChaosHarness (Platform + FPGA NIC + GW pods +
// Orchestrator + uplink switch + BGP proxies + BFD) with its own
// RecoveryController and FaultInjector; the engine layers the fleet
// concerns on top:
//
//  - a TenantPopulation hash-shards millions of Zipf-weighted tenants
//    across every gateway, sizing each pod's offered rate and flow mix;
//  - a DiurnalCurve modulates per-AZ load in lockstep slices (AZs are
//    traffic-independent, so running them slice-by-slice in AZ order is
//    deterministic and byte-identical across same-seed runs);
//  - a rolling upgrade wave redeploys gateways through the
//    orchestrator's make-before-break scale_up path — a healthy wave
//    must cost zero blackhole, and the SLO report proves it;
//  - fault scripts scoped per-AZ or fleet-wide replay through each AZ's
//    injector, with the RecoveryController timelines aggregated into
//    the fleet availability SLO report (fleet/slo.hpp);
//  - a ConformanceHarness per AZ runs the packet-conservation ledger
//    after a post-horizon drain (check_ledger_now — BFD keeps the loop
//    pending forever, so the quiesce-gated finish() path can't run).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/recovery.hpp"
#include "check/fuzz.hpp"
#include "fleet/fleet_spec.hpp"
#include "fleet/slo.hpp"
#include "fleet/tenant_population.hpp"

namespace albatross::fleet {

/// One planned gateway replacement in the rolling-upgrade wave.
struct FleetUpgradeRecord {
  std::uint32_t az = 0;
  std::uint16_t gateway = 0;  ///< AZ-local index
  NanoTime scheduled = NanoTime{0};
  NanoTime ready_at = NanoTime{0};
  NanoTime cutover = NanoTime{0};
  bool started = false;   ///< redeploy ticket issued
  bool completed = false; ///< old placement released at cutover
  bool skipped = false;   ///< gateway was mid-incident / no capacity
};

struct FleetAzResult {
  std::string name;
  std::uint16_t gateways = 0;
  ChaosHarnessCounters counters;
  FaultInjectorStats injected;
  std::vector<IncidentRecord> incidents;
  std::string timeline;  ///< RecoveryController::timeline()
  /// Summed blackhole windows per AZ-local gateway (open incidents
  /// extend to the horizon).
  std::vector<NanoTime> gateway_downtime;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t dropped = 0;  ///< rate-limit + reorder-full
  std::uint64_t packets_lost = 0;
  LogHistogram detect_hist;
  LogHistogram blackhole_hist;
  LogHistogram recovery_hist;
  std::uint64_t ledger_violations = 0;
  std::uint64_t upgrades_started = 0;
  std::uint64_t upgrades_completed = 0;
};

struct FleetResult {
  std::vector<FleetAzResult> azs;
  std::vector<FleetUpgradeRecord> upgrades;
  SloReport slo;
  std::uint64_t events_total = 0;
  std::uint64_t conformance_violations = 0;  ///< summed over AZs

  /// Canonical text rendering (timelines + SLO): two same-seed runs
  /// must produce byte-identical output.
  [[nodiscard]] std::string report_text() const;
};

class FleetEngine {
 public:
  explicit FleetEngine(FleetSpec spec);

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Executes the scenario: lockstep diurnal slices over `horizon`,
  /// then a source-quiesced drain window and the conservation ledger.
  void run();

  /// Aggregates per-AZ results and builds the SLO report. Valid after
  /// run().
  [[nodiscard]] FleetResult collect() const;

  [[nodiscard]] const FleetSpec& spec() const { return spec_; }
  [[nodiscard]] const TenantPopulation& population() const {
    return population_;
  }
  [[nodiscard]] std::size_t az_count() const { return azs_.size(); }
  GatewayChaosHarness& az_harness(std::size_t i) { return *azs_[i].harness; }
  RecoveryController& az_controller(std::size_t i) {
    return *azs_[i].controller;
  }
  [[nodiscard]] const check::ConformanceHarness& az_conformance(
      std::size_t i) const {
    return *azs_[i].conformance;
  }

 private:
  struct AzRuntime {
    FleetAzSpec az_spec;
    std::uint32_t gateway_base = 0;  ///< fleet-global index of gateway 0
    DiurnalCurve curve;
    std::unique_ptr<GatewayChaosHarness> harness;
    std::unique_ptr<RecoveryController> controller;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<check::ConformanceHarness> conformance;
    std::vector<PoissonFlowSource*> sources;  ///< per local gateway
    std::vector<double> base_rate;            ///< pps at multiplier 1.0
    std::uint64_t ledger_violations = 0;
  };

  void build_az(std::size_t i);
  void schedule_faults();
  void schedule_upgrades();
  void apply_diurnal(AzRuntime& az, NanoTime t);
  [[nodiscard]] SloReport build_slo(
      const std::vector<FleetAzResult>& azs) const;

  FleetSpec spec_;
  TenantPopulation population_;
  std::vector<AzRuntime> azs_;
  std::vector<FleetUpgradeRecord> upgrades_;
  bool ran_ = false;
};

/// Runs a fleet scenario end to end (ctor + run + collect).
FleetResult run_fleet(const FleetSpec& spec);

/// Shrunk-trace replay bridge: `albatross_sim fleet --scenario x.json`
/// accepts a conformance fuzz trace (detected by its "ops" array) and
/// replays it through check::run_trace, so a scenario the fuzz driver
/// shrank is directly re-runnable from the fleet CLI.
check::FuzzReport run_fleet_trace(const check::FuzzTrace& trace);

}  // namespace albatross::fleet

namespace albatross {
class MetricsRegistry;

/// Wires fleet-level aggregates into a registry: per-AZ incident and
/// packet counters, upgrade progress and the merged recovery
/// histograms. The engine must outlive the registry's scrapes.
void register_fleet_metrics(MetricsRegistry& registry,
                            fleet::FleetEngine& engine);

}  // namespace albatross
