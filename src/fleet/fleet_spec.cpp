#include "fleet/fleet_spec.hpp"

#include <stdexcept>

#include "core/config.hpp"

namespace albatross::fleet {

namespace {

FaultEvent fault_event_from_json(const JsonValue& ev) {
  FaultEvent e;
  e.at = millis_to_nanos(ev.get_number("at_ms", 0.0));
  e.kind = fault_kind_from_name(ev.get_string("kind", "pod_crash"));
  e.gateway = static_cast<std::uint16_t>(ev.get_int("gateway", 0));
  e.duration = millis_to_nanos(ev.get_number("duration_ms", 0.0));
  e.magnitude = ev.get_number("magnitude", 0.0);
  return e;
}

JsonValue fault_event_to_json(const FaultEvent& e) {
  JsonObject o;
  o["at_ms"] = JsonValue(nanos_to_millis(e.at));
  o["kind"] = JsonValue(std::string(fault_kind_name(e.kind)));
  o["gateway"] = JsonValue(static_cast<std::int64_t>(e.gateway));
  o["duration_ms"] = JsonValue(nanos_to_millis(e.duration));
  o["magnitude"] = JsonValue(e.magnitude);
  return JsonValue(std::move(o));
}

// service_name() renders the display form ("VPC-VPC"); the JSON schema
// uses the same lowercase tokens service_from_name() parses, so a spec
// round-trips through to_json()/from_json() unchanged.
std::string service_token(ServiceKind k) {
  switch (k) {
    case ServiceKind::kVpcVpc: return "vpc";
    case ServiceKind::kVpcInternet: return "internet";
    case ServiceKind::kVpcIdc: return "idc";
    case ServiceKind::kVpcCloudService: return "cloud";
  }
  return "vpc";
}

}  // namespace

std::uint32_t FleetSpec::total_gateways() const {
  std::uint32_t n = 0;
  for (const auto& az : azs) n += az.gateways();
  return n;
}

std::uint32_t FleetSpec::az_gateway_base(std::size_t az) const {
  std::uint32_t base = 0;
  for (std::size_t i = 0; i < az && i < azs.size(); ++i) {
    base += azs[i].gateways();
  }
  return base;
}

FleetSpec FleetSpec::from_json(const JsonValue& v) {
  const JsonValue& cfg = v["fleet"].is_object() ? v["fleet"] : v;
  FleetSpec s;
  s.name = cfg.get_string("name", s.name);
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  s.horizon = millis_to_nanos(cfg.get_number("horizon_ms", 30'000.0));
  s.tick = millis_to_nanos(cfg.get_number("tick_ms", 250.0));
  s.drain = millis_to_nanos(cfg.get_number("drain_ms", 400.0));
  if (s.tick <= NanoTime{0}) {
    throw std::runtime_error("fleet spec: tick_ms must be > 0");
  }

  s.tenants = static_cast<std::uint64_t>(cfg.get_int("tenants", 1'000'000));
  s.tenant_zipf_alpha = cfg.get_number("tenant_zipf_alpha", 1.05);
  s.local_vnis = static_cast<std::uint32_t>(cfg.get_int("local_vnis", 64));
  s.hot_tenants_per_gateway = static_cast<std::uint32_t>(
      cfg.get_int("hot_tenants_per_gateway", 2048));

  s.flows_per_gateway =
      static_cast<std::uint32_t>(cfg.get_int("flows_per_gateway", 512));
  s.flow_zipf_alpha = cfg.get_number("flow_zipf_alpha", 0.9);
  s.packet_bytes = static_cast<std::size_t>(cfg.get_int("packet_bytes", 256));
  s.total_rate_pps = cfg.get_number("total_rate_pps", 400'000.0);

  s.slo_target = cfg.get_number("slo_target", 0.999);
  s.service = service_from_name(cfg.get_string("service", "vpc"));
  s.pod_startup = millis_to_nanos(cfg.get_number("pod_startup_ms", 10'000.0));
  s.validation = millis_to_nanos(cfg.get_number("validation_ms", 5'000.0));

  if (cfg["diurnal"].is_object()) {
    const JsonValue& d = cfg["diurnal"];
    s.diurnal.period = millis_to_nanos(d.get_number("period_ms", 20'000.0));
    s.diurnal.trough = d.get_number("trough", 0.4);
    s.diurnal.peak = d.get_number("peak", 1.0);
    s.diurnal.phase = millis_to_nanos(d.get_number("phase_ms", 0.0));
    for (const auto& p : d["points"].as_array()) {
      s.diurnal.points.emplace_back(
          millis_to_nanos(p.get_number("at_ms", 0.0)),
          p.get_number("mult", 1.0));
    }
  }

  if (cfg["upgrade"].is_object()) {
    const JsonValue& u = cfg["upgrade"];
    s.upgrade.enabled = u.get_bool("enabled", true);
    s.upgrade.start = millis_to_nanos(u.get_number("start_ms", 4'000.0));
    s.upgrade.stagger = millis_to_nanos(u.get_number("stagger_ms", 1'500.0));
    s.upgrade.parallel_per_az =
        static_cast<std::uint16_t>(u.get_int("gateways_per_az", 1));
  }

  for (const auto& az_json : cfg["azs"].as_array()) {
    FleetAzSpec az;
    az.name = az_json.get_string(
        "name", "az-" + std::to_string(s.azs.size()));
    az.pod_sets = static_cast<std::uint16_t>(az_json.get_int("pod_sets", 1));
    az.gateways_per_set =
        static_cast<std::uint16_t>(az_json.get_int("gateways_per_set", 4));
    az.servers = static_cast<std::uint16_t>(az_json.get_int("servers", 2));
    az.data_cores =
        static_cast<std::uint16_t>(az_json.get_int("data_cores", 4));
    az.dual_proxy = az_json.get_bool("dual_proxy", true);
    az.diurnal_phase =
        millis_to_nanos(az_json.get_number("diurnal_phase_ms", 0.0));
    if (az.pod_sets == 0 || az.gateways_per_set == 0) {
      throw std::runtime_error("fleet spec: AZ '" + az.name +
                               "' has zero gateways");
    }
    s.azs.push_back(az);
  }
  if (s.azs.empty()) {
    throw std::runtime_error("fleet spec: at least one AZ required");
  }

  for (const auto& f_json : cfg["faults"].as_array()) {
    FleetFaultSpec f;
    f.az = static_cast<std::int32_t>(f_json.get_int("az", -1));
    if (f.az >= static_cast<std::int32_t>(s.azs.size())) {
      throw std::runtime_error("fleet spec: fault targets AZ " +
                               std::to_string(f.az) + " but only " +
                               std::to_string(s.azs.size()) + " defined");
    }
    f.event = fault_event_from_json(f_json);
    s.faults.push_back(f);
  }
  return s;
}

FleetSpec FleetSpec::from_json_text(std::string_view text) {
  JsonParseError err;
  const auto parsed = json_parse(text, &err);
  if (!parsed) {
    throw std::runtime_error("fleet scenario parse error at offset " +
                             std::to_string(err.offset) + ": " + err.message);
  }
  return from_json(*parsed);
}

JsonValue FleetSpec::to_json() const {
  JsonObject cfg;
  cfg["name"] = JsonValue(name);
  cfg["seed"] = JsonValue(static_cast<std::int64_t>(seed));
  cfg["horizon_ms"] = JsonValue(nanos_to_millis(horizon));
  cfg["tick_ms"] = JsonValue(nanos_to_millis(tick));
  cfg["drain_ms"] = JsonValue(nanos_to_millis(drain));
  cfg["tenants"] = JsonValue(static_cast<std::int64_t>(tenants));
  cfg["tenant_zipf_alpha"] = JsonValue(tenant_zipf_alpha);
  cfg["local_vnis"] = JsonValue(static_cast<std::int64_t>(local_vnis));
  cfg["hot_tenants_per_gateway"] =
      JsonValue(static_cast<std::int64_t>(hot_tenants_per_gateway));
  cfg["flows_per_gateway"] =
      JsonValue(static_cast<std::int64_t>(flows_per_gateway));
  cfg["flow_zipf_alpha"] = JsonValue(flow_zipf_alpha);
  cfg["packet_bytes"] = JsonValue(static_cast<std::int64_t>(packet_bytes));
  cfg["total_rate_pps"] = JsonValue(total_rate_pps);
  cfg["slo_target"] = JsonValue(slo_target);
  cfg["service"] = JsonValue(service_token(service));
  cfg["pod_startup_ms"] = JsonValue(nanos_to_millis(pod_startup));
  cfg["validation_ms"] = JsonValue(nanos_to_millis(validation));

  JsonObject d;
  d["period_ms"] = JsonValue(nanos_to_millis(diurnal.period));
  d["trough"] = JsonValue(diurnal.trough);
  d["peak"] = JsonValue(diurnal.peak);
  d["phase_ms"] = JsonValue(nanos_to_millis(diurnal.phase));
  if (!diurnal.points.empty()) {
    JsonArray pts;
    for (const auto& [at, mult] : diurnal.points) {
      JsonObject p;
      p["at_ms"] = JsonValue(nanos_to_millis(at));
      p["mult"] = JsonValue(mult);
      pts.emplace_back(std::move(p));
    }
    d["points"] = JsonValue(std::move(pts));
  }
  cfg["diurnal"] = JsonValue(std::move(d));

  JsonObject u;
  u["enabled"] = JsonValue(upgrade.enabled);
  u["start_ms"] = JsonValue(nanos_to_millis(upgrade.start));
  u["stagger_ms"] = JsonValue(nanos_to_millis(upgrade.stagger));
  u["gateways_per_az"] =
      JsonValue(static_cast<std::int64_t>(upgrade.parallel_per_az));
  cfg["upgrade"] = JsonValue(std::move(u));

  JsonArray az_arr;
  for (const auto& az : azs) {
    JsonObject a;
    a["name"] = JsonValue(az.name);
    a["pod_sets"] = JsonValue(static_cast<std::int64_t>(az.pod_sets));
    a["gateways_per_set"] =
        JsonValue(static_cast<std::int64_t>(az.gateways_per_set));
    a["servers"] = JsonValue(static_cast<std::int64_t>(az.servers));
    a["data_cores"] = JsonValue(static_cast<std::int64_t>(az.data_cores));
    a["dual_proxy"] = JsonValue(az.dual_proxy);
    a["diurnal_phase_ms"] = JsonValue(nanos_to_millis(az.diurnal_phase));
    az_arr.emplace_back(std::move(a));
  }
  cfg["azs"] = JsonValue(std::move(az_arr));

  JsonArray f_arr;
  for (const auto& f : faults) {
    JsonValue ev = fault_event_to_json(f.event);
    JsonObject o = ev.as_object();
    o["az"] = JsonValue(static_cast<std::int64_t>(f.az));
    f_arr.emplace_back(std::move(o));
  }
  cfg["faults"] = JsonValue(std::move(f_arr));

  JsonObject root;
  root["fleet"] = JsonValue(std::move(cfg));
  return JsonValue(std::move(root));
}

FleetSpec FleetSpec::smoke() {
  FleetSpec s;
  s.name = "smoke";
  s.horizon = 6 * kSecond;
  s.tick = 250 * kMillisecond;
  s.drain = 400 * kMillisecond;
  s.tenants = 100'000;
  s.local_vnis = 32;
  s.hot_tenants_per_gateway = 256;
  s.flows_per_gateway = 128;
  s.total_rate_pps = 40'000.0;
  // Shortened orchestrator timings so a crash recovers inside the
  // 6 s horizon (BFD detection alone is ~150 ms).
  s.pod_startup = kSecond;
  s.validation = 500 * kMillisecond;
  s.diurnal.period = 4 * kSecond;

  FleetAzSpec az_a;
  az_a.name = "az-a";
  az_a.pod_sets = 1;
  az_a.gateways_per_set = 2;
  az_a.servers = 2;
  FleetAzSpec az_b = az_a;
  az_b.name = "az-b";
  az_b.diurnal_phase = 2 * kSecond;
  s.azs = {az_a, az_b};

  s.upgrade.enabled = true;
  s.upgrade.start = 1500 * kMillisecond;
  s.upgrade.stagger = 800 * kMillisecond;

  FleetFaultSpec crash;
  crash.az = 0;
  crash.event.at = 2 * kSecond;
  crash.event.kind = FaultKind::kPodCrash;
  crash.event.gateway = 1;
  s.faults.push_back(crash);
  return s;
}

}  // namespace albatross::fleet
