#include "fleet/tenant_population.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace albatross::fleet {

TenantPopulation::TenantPopulation(std::uint64_t tenants, double alpha,
                                   std::uint64_t seed,
                                   std::uint32_t total_gateways,
                                   std::uint32_t max_tenants_per_gateway)
    : tenants_(tenants == 0 ? 1 : tenants),
      alpha_(alpha),
      seed_(seed),
      share_(total_gateways == 0 ? 1 : total_gateways, 0.0),
      tenant_count_(share_.size(), 0),
      hot_(share_.size()) {
  if (max_tenants_per_gateway == 0) max_tenants_per_gateway = 1;
  // Single pass: accumulate the harmonic normaliser and per-gateway
  // unnormalised weight in the same sweep (~1e6 pow() calls, run once
  // per scenario, not per packet).
  double h = 0.0;
  for (std::uint64_t t = 0; t < tenants_; ++t) {
    const double w = std::pow(static_cast<double>(t + 1), -alpha_);
    h += w;
    const std::uint32_t g = gateway(t);
    share_[g] += w;
    ++tenant_count_[g];
    if (hot_[g].size() < max_tenants_per_gateway) hot_[g].push_back(t);
  }
  harmonic_ = h;
  for (auto& s : share_) s /= harmonic_;
}

double TenantPopulation::weight(std::uint64_t t) const {
  if (t >= tenants_) return 0.0;
  return std::pow(static_cast<double>(t + 1), -alpha_) / harmonic_;
}

std::uint32_t TenantPopulation::gateway(std::uint64_t t) const {
  return static_cast<std::uint32_t>(
      mix64(t ^ (seed_ * 0x9e3779b97f4a7c15ull)) % share_.size());
}

}  // namespace albatross::fleet
