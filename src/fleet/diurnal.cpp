#include "fleet/diurnal.hpp"

#include <algorithm>
#include <cmath>

namespace albatross::fleet {

DiurnalCurve::DiurnalCurve(DiurnalConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.period <= NanoTime{0}) cfg_.period = NanoTime{1};
  std::sort(cfg_.points.begin(), cfg_.points.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

double DiurnalCurve::multiplier(NanoTime t) const {
  const std::int64_t period = cfg_.period.count();
  std::int64_t off = (t + cfg_.phase).count() % period;
  if (off < 0) off += period;
  if (cfg_.points.empty()) {
    const double frac = static_cast<double>(off) / static_cast<double>(period);
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    // Raised cosine: trough at frac = 0, peak at frac = 0.5.
    return cfg_.trough +
           (cfg_.peak - cfg_.trough) * 0.5 * (1.0 - std::cos(kTwoPi * frac));
  }
  if (cfg_.points.size() == 1) return cfg_.points.front().second;
  // Find the keypoint segment containing `off`, wrapping across the
  // period boundary from the last point back to the first.
  const auto& pts = cfg_.points;
  auto it = std::upper_bound(
      pts.begin(), pts.end(), off,
      [](std::int64_t v, const auto& p) { return v < p.first.count(); });
  const auto& hi = it == pts.end() ? pts.front() : *it;
  const auto& lo = it == pts.begin() ? pts.back() : *(it - 1);
  std::int64_t span = hi.first.count() - lo.first.count();
  std::int64_t pos = off - lo.first.count();
  if (span <= 0) span += period;      // wrapped segment
  if (pos < 0) pos += period;         // `off` before first point
  if (span == 0) return lo.second;
  const double f = static_cast<double>(pos) / static_cast<double>(span);
  return lo.second + (hi.second - lo.second) * f;
}

double DiurnalCurve::mean_multiplier() const {
  if (cfg_.points.empty()) {
    // Integral of the raised cosine over a full period is the midpoint.
    return 0.5 * (cfg_.trough + cfg_.peak);
  }
  if (cfg_.points.size() == 1) return cfg_.points.front().second;
  // Trapezoid over the sorted keypoints plus the wrapping segment.
  const auto& pts = cfg_.points;
  const double period = static_cast<double>(cfg_.period.count());
  double area = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto& lo = pts[i];
    const auto& hi = pts[(i + 1) % pts.size()];
    std::int64_t span = hi.first.count() - lo.first.count();
    if (span <= 0) span += cfg_.period.count();
    area += 0.5 * (lo.second + hi.second) * static_cast<double>(span);
  }
  return area / period;
}

}  // namespace albatross::fleet
