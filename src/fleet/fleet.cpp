#include "fleet/fleet.hpp"

#include <algorithm>
#include <sstream>

#include "common/hash.hpp"
#include "container/cost_model.hpp"
#include "telemetry/metrics.hpp"
#include "traffic/flow_gen.hpp"

namespace albatross::fleet {

namespace {

/// Floor for the diurnal multiplier: a source whose rate hits zero
/// stops pumping permanently (PoissonFlowSource contract), so the
/// trough is clamped strictly positive until the final drain.
constexpr double kMinMultiplier = 0.01;

std::uint64_t gateway_seed(std::uint64_t fleet_seed, std::uint32_t global_g) {
  return mix64(fleet_seed ^ (0x66CEE7u + std::uint64_t{global_g} *
                                             0x9e3779b97f4a7c15ull));
}

}  // namespace

FleetEngine::FleetEngine(FleetSpec spec)
    : spec_(std::move(spec)),
      population_(spec_.tenants, spec_.tenant_zipf_alpha, spec_.seed,
                  spec_.total_gateways(), spec_.hot_tenants_per_gateway) {
  azs_.reserve(spec_.azs.size());
  for (std::size_t i = 0; i < spec_.azs.size(); ++i) build_az(i);
  schedule_faults();
  if (spec_.upgrade.enabled) schedule_upgrades();
}

void FleetEngine::build_az(std::size_t i) {
  AzRuntime az;
  az.az_spec = spec_.azs[i];
  az.gateway_base = spec_.az_gateway_base(i);
  DiurnalConfig curve_cfg = spec_.diurnal;
  curve_cfg.phase = curve_cfg.phase + az.az_spec.diurnal_phase;
  az.curve = DiurnalCurve(curve_cfg);

  ChaosHarnessConfig hc;
  hc.gateways = az.az_spec.gateways();
  hc.service = spec_.service;
  hc.data_cores = az.az_spec.data_cores;
  hc.dual_proxy = az.az_spec.dual_proxy;
  hc.servers = az.az_spec.servers;
  hc.platform.tenants = std::max(spec_.local_vnis, 16u);
  hc.orch.pod_startup = spec_.pod_startup;
  hc.orch.handover_validation = spec_.validation;
  az.harness = std::make_unique<GatewayChaosHarness>(hc);

  // Conformance probes attach before traffic so the ledger sees every
  // packet from the first arrival.
  az.conformance = std::make_unique<check::ConformanceHarness>();
  az.conformance->attach(az.harness->platform());

  // Per-gateway traffic: flow populations drawn from the gateway's
  // hot-tenant sample (heaviest global tenants that shard here), rate
  // sized by its share of the fleet's Zipf mass.
  const std::uint16_t gw_count = az.harness->gateway_count();
  az.sources.reserve(gw_count);
  az.base_rate.reserve(gw_count);
  for (std::uint16_t g = 0; g < gw_count; ++g) {
    const std::uint32_t global_g = az.gateway_base + g;
    const auto& hot = population_.tenants_for_gateway(global_g);
    std::vector<FlowInfo> flows;
    flows.reserve(spec_.flows_per_gateway);
    for (std::uint32_t f = 0; f < spec_.flows_per_gateway; ++f) {
      const std::uint64_t tenant =
          hot.empty() ? global_g : hot[f % hot.size()];
      const Vni vni = 1 + static_cast<Vni>(tenant % spec_.local_vnis);
      flows.push_back(make_flow(f, vni, f));
    }

    PoissonFlowConfig pc;
    pc.tenants = spec_.local_vnis;
    pc.zipf_alpha = spec_.flow_zipf_alpha;
    pc.rate_pps =
        std::max(1.0, spec_.total_rate_pps *
                          population_.gateway_share(global_g)) *
        std::max(kMinMultiplier, az.curve.multiplier(NanoTime{0}));
    pc.packet_bytes = spec_.packet_bytes;
    pc.seed = gateway_seed(spec_.seed, global_g);

    az.base_rate.push_back(
        std::max(1.0, spec_.total_rate_pps *
                          population_.gateway_share(global_g)));
    auto src = std::make_unique<PoissonFlowSource>(pc, std::move(flows));
    az.sources.push_back(src.get());
    az.harness->platform().attach_source(std::move(src),
                                         az.harness->pod(g));
  }

  az.controller =
      std::make_unique<RecoveryController>(*az.harness, RecoveryConfig{});
  az.controller->arm();
  az.injector =
      std::make_unique<FaultInjector>(az.harness->loop(), *az.harness);
  azs_.push_back(std::move(az));
}

void FleetEngine::schedule_faults() {
  // Group the spec's faults into one plan per AZ ("az": -1 lands in
  // every zone, with the event's gateway read as an AZ-local index).
  for (std::size_t i = 0; i < azs_.size(); ++i) {
    FaultPlan plan;
    plan.name = spec_.name + "/" + azs_[i].az_spec.name;
    for (const auto& f : spec_.faults) {
      if (f.az >= 0 && static_cast<std::size_t>(f.az) != i) continue;
      plan.events.push_back(f.event);
    }
    if (plan.events.empty()) continue;
    plan.sort();
    azs_[i].injector->schedule(plan);
  }
}

void FleetEngine::schedule_upgrades() {
  // Rolling wave: within each AZ, gateways upgrade `parallel_per_az` at
  // a time, waves `stagger` apart; every AZ rolls concurrently (the
  // usual production pattern — an AZ is the blast-radius unit).
  const std::uint16_t par = std::max<std::uint16_t>(
      1, spec_.upgrade.parallel_per_az);
  for (std::size_t i = 0; i < azs_.size(); ++i) {
    AzRuntime& az = azs_[i];
    for (std::uint16_t g = 0; g < az.harness->gateway_count(); ++g) {
      const NanoTime at =
          spec_.upgrade.start + (g / par) * spec_.upgrade.stagger;
      if (at >= spec_.horizon) continue;
      const std::size_t rec_idx = upgrades_.size();
      FleetUpgradeRecord rec;
      rec.az = static_cast<std::uint32_t>(i);
      rec.gateway = g;
      rec.scheduled = at;
      upgrades_.push_back(rec);
      az.harness->loop().schedule_at(at, [this, i, g, rec_idx] {
        AzRuntime& azr = azs_[i];
        FleetUpgradeRecord& r = upgrades_[rec_idx];
        const NanoTime now = azr.harness->loop().now();
        if (!azr.harness->alive(g)) {
          // Mid-incident: the RecoveryController already owns this
          // gateway's replacement; skip the planned roll.
          r.skipped = true;
          return;
        }
        const auto ticket = azr.harness->redeploy(g, now);
        if (!ticket) {
          r.skipped = true;  // no spare capacity
          return;
        }
        r.started = true;
        r.ready_at = ticket->placement.ready_at;
        r.cutover = ticket->cutover;
        azr.harness->loop().schedule_at(
            ticket->cutover, [this, i, rec_idx,
                              old = ticket->old_orch_pod] {
              azs_[i].harness->finish_redeploy(old);
              upgrades_[rec_idx].completed = true;
            });
      });
    }
  }
}

void FleetEngine::apply_diurnal(AzRuntime& az, NanoTime t) {
  const double mult = std::max(kMinMultiplier, az.curve.multiplier(t));
  for (std::uint16_t g = 0; g < az.harness->gateway_count(); ++g) {
    az.sources[g]->set_rate(az.base_rate[g] * mult);
  }
}

void FleetEngine::run() {
  // Lockstep diurnal slices. AZs exchange no traffic, so advancing them
  // one after another inside each slice preserves determinism while
  // keeping all AZ clocks within one tick of each other.
  for (NanoTime t = NanoTime{0}; t < spec_.horizon; t += spec_.tick) {
    const NanoTime slice_end = std::min(t + spec_.tick, spec_.horizon);
    for (auto& az : azs_) {
      apply_diurnal(az, t);
      az.harness->platform().run_until(slice_end);
    }
  }

  // Drain: quiesce every source (rate 0 parks the pump permanently —
  // only legal here, after the horizon) and let in-flight packets land
  // so the conservation ledger balances. BFD timers keep the loop
  // pending forever, hence check_ledger_now instead of finish()'s
  // quiesce-gated path.
  const NanoTime drain_end = spec_.horizon + spec_.drain;
  for (auto& az : azs_) {
    for (auto* src : az.sources) src->set_rate(0.0);
    az.harness->platform().run_until(drain_end);
    az.conformance->finish();  // reorder-leak checks (ledger skipped)
    az.ledger_violations = az.conformance->check_ledger_now();
  }
  ran_ = true;
}

FleetResult FleetEngine::collect() const {
  FleetResult result;
  result.upgrades = upgrades_;
  for (const auto& az : azs_) {
    FleetAzResult r;
    r.name = az.az_spec.name;
    r.gateways = az.harness->gateway_count();
    r.counters = az.harness->counters();
    r.injected = az.injector->stats();
    r.incidents = az.controller->incidents();
    r.timeline = az.controller->timeline();
    r.detect_hist = az.controller->detect_latency_hist();
    r.blackhole_hist = az.controller->blackhole_hist();
    r.recovery_hist = az.controller->recovery_hist();
    r.packets_lost = az.controller->packets_lost_total();
    r.ledger_violations = az.ledger_violations;

    r.gateway_downtime.assign(r.gateways, NanoTime{0});
    for (const auto& inc : r.incidents) {
      // Downtime = the blackhole window (fault -> upstream reroute);
      // an incident never withdrawn by the horizon stays black to the
      // end.
      const NanoTime until = inc.withdrawn_at != NanoTime{}
                                 ? inc.withdrawn_at
                                 : spec_.horizon;
      if (until > inc.fault_at) {
        r.gateway_downtime[inc.gateway] += until - inc.fault_at;
      }
    }

    for (std::uint16_t g = 0; g < r.gateways; ++g) {
      const PodTelemetry& tel =
          az.harness->platform().telemetry(az.harness->pod(g));
      r.offered += tel.offered;
      r.delivered += tel.delivered;
      r.blackholed += tel.blackholed;
      r.dropped += tel.dropped_rate_limit + tel.dropped_reorder_full;
    }
    result.events_total += az.harness->loop().events_processed();
    result.conformance_violations += az.ledger_violations;

    for (const auto& u : upgrades_) {
      if (&azs_[u.az] != &az) continue;
      if (u.started) ++r.upgrades_started;
      if (u.completed) ++r.upgrades_completed;
    }
    result.azs.push_back(std::move(r));
  }
  result.slo = build_slo(result.azs);
  return result;
}

SloReport FleetEngine::build_slo(const std::vector<FleetAzResult>& azs) const {
  SloReport slo;
  slo.fleet = spec_.name;
  slo.seed = spec_.seed;
  slo.horizon_ms = nanos_to_millis(spec_.horizon);
  slo.slo_target = spec_.slo_target;
  slo.tenants = spec_.tenants;
  slo.gateways = spec_.total_gateways();

  const double horizon_ms = slo.horizon_ms;
  AzCostModel cost_model;
  std::vector<WeightedSample> by_load;
  std::vector<WeightedSample> by_count;
  double downtime_weighted_ms = 0.0;  ///< sum share_g * downtime_g
  double worst_ms = 0.0;
  double tenants_meeting = 0.0;
  double tenants_total = 0.0;

  for (std::size_t i = 0; i < azs.size(); ++i) {
    const FleetAzResult& r = azs[i];
    const std::uint32_t base = spec_.az_gateway_base(i);

    AzSlo az;
    az.name = r.name;
    az.gateways = r.gateways;
    az.pod_sets = spec_.azs[i].pod_sets;
    az.incidents = r.incidents.size();
    for (const auto& inc : r.incidents) {
      if (inc.recovered) ++az.recovered;
      if (inc.redeployed) ++az.redeploys;
    }
    az.upgrades = r.upgrades_started;
    az.offered = r.offered;
    az.delivered = r.delivered;
    az.blackholed = r.blackholed;
    az.packets_lost = r.packets_lost;
    az.blackhole_p99_ms =
        static_cast<double>(r.blackhole_hist.quantile(0.99)) / 1e6;
    az.blackhole_p999_ms =
        static_cast<double>(r.blackhole_hist.quantile(0.999)) / 1e6;
    az.detect_p99_ms =
        static_cast<double>(r.detect_hist.quantile(0.99)) / 1e6;
    az.recovery_p99_ms =
        static_cast<double>(r.recovery_hist.quantile(0.99)) / 1e6;

    // Fig. 15 pricing at this AZ's actual pod-set count: each pod set
    // stands for one paper role sheet, so the fleet bench, the Fig. 15
    // bench and this report all go through one AzCostModel path.
    AzRequirements req;
    req.pod_sets = az.pod_sets;
    const AzCostReport alb = cost_model.albatross_az(req);
    const AzCostReport legacy = cost_model.legacy_az(req);
    az.cost = alb.total_cost;
    az.power_w = alb.total_power_w;
    az.cost_legacy = legacy.total_cost;
    az.power_legacy_w = legacy.total_power_w;

    double az_share = 0.0;
    double az_downtime_weighted = 0.0;
    for (std::uint16_t g = 0; g < r.gateways; ++g) {
      const std::uint32_t global_g = base + g;
      const double share = population_.gateway_share(global_g);
      const double tenant_count = static_cast<double>(
          population_.gateway_tenant_count(global_g));
      const double down_ms = nanos_to_millis(r.gateway_downtime[g]);

      az.downtime_ms_total += down_ms;
      az.worst_gateway_downtime_ms =
          std::max(az.worst_gateway_downtime_ms, down_ms);
      worst_ms = std::max(worst_ms, down_ms);
      az_share += share;
      az_downtime_weighted += share * down_ms;
      downtime_weighted_ms += share * down_ms;
      by_load.push_back({down_ms, share});
      by_count.push_back({down_ms, tenant_count});
      tenants_total += tenant_count;
      const double avail_g = horizon_ms > 0.0
                                 ? 1.0 - down_ms / horizon_ms
                                 : 1.0;
      if (avail_g >= spec_.slo_target) tenants_meeting += tenant_count;

      GatewaySlo gw;
      gw.global_index = global_g;
      gw.az = r.name;
      gw.downtime_ms = down_ms;
      gw.share = share;
      gw.tenant_count = population_.gateway_tenant_count(global_g);
      const PodTelemetry& tel =
          azs_[i].harness->platform().telemetry(azs_[i].harness->pod(g));
      gw.offered = tel.offered;
      gw.delivered = tel.delivered;
      gw.blackholed = tel.blackholed;
      slo.per_gateway.push_back(gw);
    }
    az.availability =
        az_share > 0.0 && horizon_ms > 0.0
            ? 1.0 - (az_downtime_weighted / az_share) / horizon_ms
            : 1.0;

    slo.incidents += az.incidents;
    slo.recovered += az.recovered;
    slo.redeploys += az.redeploys;
    slo.upgrades += r.upgrades_started;
    slo.offered += r.offered;
    slo.delivered += r.delivered;
    slo.blackholed += r.blackholed;
    slo.packets_lost += r.packets_lost;
    slo.cost_total += az.cost;
    slo.power_total_w += az.power_w;
    slo.cost_legacy_total += az.cost_legacy;
    slo.power_legacy_total_w += az.power_legacy_w;
    slo.azs.push_back(std::move(az));
  }

  slo.availability =
      horizon_ms > 0.0 ? 1.0 - downtime_weighted_ms / horizon_ms : 1.0;
  slo.error_budget_burn =
      spec_.slo_target < 1.0
          ? (1.0 - slo.availability) / (1.0 - spec_.slo_target)
          : (slo.availability < 1.0 ? 1.0 : 0.0);
  slo.slo_met = slo.availability >= spec_.slo_target;
  slo.delivery_ratio =
      slo.offered > 0 ? static_cast<double>(slo.delivered) /
                            static_cast<double>(slo.offered)
                      : 1.0;

  slo.tenant.downtime_p50_ms = weighted_quantile(by_load, 0.50);
  slo.tenant.downtime_p99_ms = weighted_quantile(by_load, 0.99);
  slo.tenant.downtime_p999_ms = weighted_quantile(by_load, 0.999);
  slo.tenant.count_p50_ms = weighted_quantile(by_count, 0.50);
  slo.tenant.count_p99_ms = weighted_quantile(by_count, 0.99);
  slo.tenant.count_p999_ms = weighted_quantile(by_count, 0.999);
  slo.tenant.worst_ms = worst_ms;
  slo.tenant.fraction_meeting_slo =
      tenants_total > 0.0 ? tenants_meeting / tenants_total : 1.0;
  return slo;
}

std::string FleetResult::report_text() const {
  std::ostringstream os;
  os << slo.text();
  os << "upgrades: " << upgrades.size() << " planned";
  std::size_t started = 0, completed = 0, skipped = 0;
  for (const auto& u : upgrades) {
    if (u.started) ++started;
    if (u.completed) ++completed;
    if (u.skipped) ++skipped;
  }
  os << ", " << started << " started, " << completed << " completed, "
     << skipped << " skipped\n";
  os << "conformance: " << conformance_violations << " violations, "
     << events_total << " loop events\n";
  for (const auto& az : azs) {
    os << "--- incident timeline [" << az.name << "] ---\n" << az.timeline;
  }
  return os.str();
}

FleetResult run_fleet(const FleetSpec& spec) {
  FleetEngine engine(spec);
  engine.run();
  return engine.collect();
}

check::FuzzReport run_fleet_trace(const check::FuzzTrace& trace) {
  return check::run_trace(trace);
}

}  // namespace albatross::fleet

namespace albatross {

void register_fleet_metrics(MetricsRegistry& registry,
                            fleet::FleetEngine& engine) {
  for (std::size_t i = 0; i < engine.az_count(); ++i) {
    const Labels labels{{"az", engine.spec().azs[i].name}};
    auto& harness = engine.az_harness(i);
    auto& controller = engine.az_controller(i);
    registry.register_counter(
        "fleet_incidents_opened", labels,
        [&controller] {
          return static_cast<double>(controller.incidents_opened());
        },
        "incidents opened in this AZ");
    registry.register_counter(
        "fleet_incidents_recovered", labels,
        [&controller] {
          return static_cast<double>(controller.incidents_recovered());
        },
        "incidents recovered in this AZ");
    registry.register_counter(
        "fleet_redeploys", labels,
        [&harness] {
          return static_cast<double>(harness.counters().redeploys);
        },
        "replacement pods deployed (crash recovery + planned upgrades)");
    registry.register_counter(
        "fleet_packets_lost", labels,
        [&controller] {
          return static_cast<double>(controller.packets_lost_total());
        },
        "packets blackholed inside incident windows");
    registry.register_histogram(
        "fleet_blackhole_ns", labels,
        [&controller] { return &controller.blackhole_hist(); },
        "per-incident blackhole duration");
    registry.register_histogram(
        "fleet_recovery_ns", labels,
        [&controller] { return &controller.recovery_hist(); },
        "per-incident total recovery duration");
  }
}

}  // namespace albatross
