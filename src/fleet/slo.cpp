#include "fleet/slo.hpp"

#include <algorithm>
#include <cstdio>

namespace albatross::fleet {

double weighted_quantile(std::vector<WeightedSample> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end(),
            [](const WeightedSample& a, const WeightedSample& b) {
              return a.value < b.value;
            });
  double total = 0.0;
  for (const auto& s : samples) total += s.weight;
  if (total <= 0.0) return samples.front().value;
  if (q <= 0.0) return samples.front().value;
  if (q >= 1.0) return samples.back().value;
  const double target = q * total;
  double acc = 0.0;
  for (const auto& s : samples) {
    acc += s.weight;
    if (acc >= target) return s.value;
  }
  return samples.back().value;  // FP slack on the final accumulation
}

namespace {

[[nodiscard]] std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

JsonValue gateway_to_json(const GatewaySlo& g) {
  JsonObject o;
  o["az"] = JsonValue(g.az);
  o["blackholed"] = JsonValue(static_cast<std::int64_t>(g.blackholed));
  o["delivered"] = JsonValue(static_cast<std::int64_t>(g.delivered));
  o["downtime_ms"] = JsonValue(g.downtime_ms);
  o["gateway"] = JsonValue(static_cast<std::int64_t>(g.global_index));
  o["offered"] = JsonValue(static_cast<std::int64_t>(g.offered));
  o["share"] = JsonValue(g.share);
  o["tenants"] = JsonValue(static_cast<std::int64_t>(g.tenant_count));
  return JsonValue(std::move(o));
}

JsonValue az_to_json(const AzSlo& az) {
  JsonObject o;
  o["availability"] = JsonValue(az.availability);
  o["blackhole_p999_ms"] = JsonValue(az.blackhole_p999_ms);
  o["blackhole_p99_ms"] = JsonValue(az.blackhole_p99_ms);
  o["blackholed"] = JsonValue(static_cast<std::int64_t>(az.blackholed));
  o["cost"] = JsonValue(az.cost);
  o["cost_legacy"] = JsonValue(az.cost_legacy);
  o["delivered"] = JsonValue(static_cast<std::int64_t>(az.delivered));
  o["detect_p99_ms"] = JsonValue(az.detect_p99_ms);
  o["downtime_ms_total"] = JsonValue(az.downtime_ms_total);
  o["gateways"] = JsonValue(static_cast<std::int64_t>(az.gateways));
  o["incidents"] = JsonValue(static_cast<std::int64_t>(az.incidents));
  o["name"] = JsonValue(az.name);
  o["offered"] = JsonValue(static_cast<std::int64_t>(az.offered));
  o["packets_lost"] = JsonValue(static_cast<std::int64_t>(az.packets_lost));
  o["pod_sets"] = JsonValue(static_cast<std::int64_t>(az.pod_sets));
  o["power_legacy_w"] = JsonValue(az.power_legacy_w);
  o["power_w"] = JsonValue(az.power_w);
  o["recovered"] = JsonValue(static_cast<std::int64_t>(az.recovered));
  o["recovery_p99_ms"] = JsonValue(az.recovery_p99_ms);
  o["redeploys"] = JsonValue(static_cast<std::int64_t>(az.redeploys));
  o["upgrades"] = JsonValue(static_cast<std::int64_t>(az.upgrades));
  o["worst_gateway_downtime_ms"] = JsonValue(az.worst_gateway_downtime_ms);
  return JsonValue(std::move(o));
}

}  // namespace

JsonValue SloReport::to_json() const {
  JsonObject t;
  t["count_p50_ms"] = JsonValue(tenant.count_p50_ms);
  t["count_p999_ms"] = JsonValue(tenant.count_p999_ms);
  t["count_p99_ms"] = JsonValue(tenant.count_p99_ms);
  t["downtime_p50_ms"] = JsonValue(tenant.downtime_p50_ms);
  t["downtime_p999_ms"] = JsonValue(tenant.downtime_p999_ms);
  t["downtime_p99_ms"] = JsonValue(tenant.downtime_p99_ms);
  t["fraction_meeting_slo"] = JsonValue(tenant.fraction_meeting_slo);
  t["worst_ms"] = JsonValue(tenant.worst_ms);

  JsonArray az_arr;
  for (const auto& az : azs) az_arr.push_back(az_to_json(az));
  JsonArray gw_arr;
  for (const auto& g : per_gateway) gw_arr.push_back(gateway_to_json(g));

  JsonObject o;
  o["availability"] = JsonValue(availability);
  o["azs"] = JsonValue(std::move(az_arr));
  o["blackholed"] = JsonValue(static_cast<std::int64_t>(blackholed));
  o["cost_legacy_total"] = JsonValue(cost_legacy_total);
  o["cost_total"] = JsonValue(cost_total);
  o["delivered"] = JsonValue(static_cast<std::int64_t>(delivered));
  o["delivery_ratio"] = JsonValue(delivery_ratio);
  o["error_budget_burn"] = JsonValue(error_budget_burn);
  o["fleet"] = JsonValue(fleet);
  o["gateways"] = JsonValue(static_cast<std::int64_t>(gateways));
  o["horizon_ms"] = JsonValue(horizon_ms);
  o["incidents"] = JsonValue(static_cast<std::int64_t>(incidents));
  o["offered"] = JsonValue(static_cast<std::int64_t>(offered));
  o["packets_lost"] = JsonValue(static_cast<std::int64_t>(packets_lost));
  o["per_gateway"] = JsonValue(std::move(gw_arr));
  o["power_legacy_total_w"] = JsonValue(power_legacy_total_w);
  o["power_total_w"] = JsonValue(power_total_w);
  o["recovered"] = JsonValue(static_cast<std::int64_t>(recovered));
  o["redeploys"] = JsonValue(static_cast<std::int64_t>(redeploys));
  o["seed"] = JsonValue(static_cast<std::int64_t>(seed));
  o["slo_met"] = JsonValue(slo_met);
  o["slo_target"] = JsonValue(slo_target);
  o["tenant"] = JsonValue(std::move(t));
  o["tenants"] = JsonValue(static_cast<std::int64_t>(tenants));
  o["upgrades"] = JsonValue(static_cast<std::int64_t>(upgrades));
  return JsonValue(std::move(o));
}

std::string SloReport::text() const {
  std::string out;
  out += "=== fleet SLO report: " + fleet + " ===\n";
  out += "horizon " + fmt("%.0f", horizon_ms) + " ms, " +
         std::to_string(tenants) + " tenants over " +
         std::to_string(gateways) + " gateways in " +
         std::to_string(azs.size()) + " AZs\n";
  out += "availability " + fmt("%.6f", availability) + " (target " +
         fmt("%.4f", slo_target) + ", " + (slo_met ? "MET" : "MISSED") +
         "), error budget burned " + fmt("%.2f", error_budget_burn * 100.0) +
         "%\n";
  out += "incidents " + std::to_string(incidents) + " (" +
         std::to_string(recovered) + " recovered), redeploys " +
         std::to_string(redeploys) + ", planned upgrades " +
         std::to_string(upgrades) + "\n";
  out += "packets: offered " + std::to_string(offered) + ", delivered " +
         std::to_string(delivered) + " (" +
         fmt("%.4f", delivery_ratio * 100.0) + "%), blackholed " +
         std::to_string(blackholed) + ", lost-to-incidents " +
         std::to_string(packets_lost) + "\n";
  out += "tenant downtime (load-weighted) p50/p99/p999 " +
         fmt("%.1f", tenant.downtime_p50_ms) + "/" +
         fmt("%.1f", tenant.downtime_p99_ms) + "/" +
         fmt("%.1f", tenant.downtime_p999_ms) + " ms, worst " +
         fmt("%.1f", tenant.worst_ms) + " ms\n";
  out += "tenant downtime (headcount)     p50/p99/p999 " +
         fmt("%.1f", tenant.count_p50_ms) + "/" +
         fmt("%.1f", tenant.count_p99_ms) + "/" +
         fmt("%.1f", tenant.count_p999_ms) + " ms, " +
         fmt("%.4f", tenant.fraction_meeting_slo * 100.0) +
         "% of tenants met the SLO\n";
  out += "cost: albatross " + fmt("%.1f", cost_total) + " (" +
         fmt("%.0f", power_total_w) + " W) vs legacy " +
         fmt("%.1f", cost_legacy_total) + " (" +
         fmt("%.0f", power_legacy_total_w) + " W)\n";
  for (const auto& az : azs) {
    out += "  [" + az.name + "] gw " + std::to_string(az.gateways) +
           ", incidents " + std::to_string(az.incidents) + "/" +
           std::to_string(az.recovered) + " recovered, availability " +
           fmt("%.6f", az.availability) + ", blackhole p99 " +
           fmt("%.1f", az.blackhole_p99_ms) + " ms p999 " +
           fmt("%.1f", az.blackhole_p999_ms) + " ms, worst gw downtime " +
           fmt("%.1f", az.worst_gateway_downtime_ms) + " ms\n";
  }
  return out;
}

}  // namespace albatross::fleet
